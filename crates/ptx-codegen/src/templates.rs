//! PTX kernel templates for CNN inference.
//!
//! Every template is shape-generic: tensor dimensions and loop trip counts
//! arrive as kernel parameters, so one compiled kernel serves every layer of
//! its type (mirroring how cuDNN/XLA reuse kernels across layer shapes).
//!
//! Control-flow discipline: the *only* branches are the global-thread-id
//! bounds guard and counted/strided loop back-edges, both of whose
//! predicates are affine in the thread id or concrete in loop state.
//! Data-dependent selections (padding borders, max pooling) are emitted
//! branchlessly with `selp`/`max`, matching how `nvcc` if-converts such
//! code. This is what makes the paper's slicing-based dynamic code analysis
//! exact on these kernels.

use ptx::builder::KernelBuilder;
use ptx::inst::{Address, Operand};
use ptx::kernel::Kernel;
use ptx::types::{BinOp, CmpOp, Reg, Space, Type, UnOp};

/// Threads per block for every generated kernel (power of two so the
/// Fig. 2 `shl`/`or` global-id idiom applies).
pub const BLOCK: u32 = 256;

/// GEMM tile edge; blocks of 256 threads compute 16x16 output tiles.
pub const TILE: u32 = 16;

/// Names of all kernel templates, in the order [`build_all`] returns them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Template {
    CopyF32,
    FillF32,
    EwAdd,
    EwMul,
    EwMulBcast,
    AffineCh,
    ActRelu,
    ActRelu6,
    ActSigmoid,
    ActTanh,
    ActSwish,
    ActHardSwish,
    SoftmaxMax,
    SoftmaxExpSum,
    SoftmaxDiv,
    Im2col,
    GemmTiled,
    GemmMicro,
    Gemv,
    Depthwise,
    PoolMax,
    PoolAvg,
    GapAvg,
    GapMax,
    PadCopy,
}

impl Template {
    pub const ALL: [Template; 25] = [
        Template::CopyF32,
        Template::FillF32,
        Template::EwAdd,
        Template::EwMul,
        Template::EwMulBcast,
        Template::AffineCh,
        Template::ActRelu,
        Template::ActRelu6,
        Template::ActSigmoid,
        Template::ActTanh,
        Template::ActSwish,
        Template::ActHardSwish,
        Template::SoftmaxMax,
        Template::SoftmaxExpSum,
        Template::SoftmaxDiv,
        Template::Im2col,
        Template::GemmTiled,
        Template::GemmMicro,
        Template::Gemv,
        Template::Depthwise,
        Template::PoolMax,
        Template::PoolAvg,
        Template::GapAvg,
        Template::GapMax,
        Template::PadCopy,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Template::CopyF32 => "k_copy_f32",
            Template::FillF32 => "k_fill_f32",
            Template::EwAdd => "k_ew_add_f32",
            Template::EwMul => "k_ew_mul_f32",
            Template::EwMulBcast => "k_ew_mul_bcast_f32",
            Template::AffineCh => "k_affine_ch_f32",
            Template::ActRelu => "k_act_relu_f32",
            Template::ActRelu6 => "k_act_relu6_f32",
            Template::ActSigmoid => "k_act_sigmoid_f32",
            Template::ActTanh => "k_act_tanh_f32",
            Template::ActSwish => "k_act_swish_f32",
            Template::ActHardSwish => "k_act_hswish_f32",
            Template::SoftmaxMax => "k_softmax_max_f32",
            Template::SoftmaxExpSum => "k_softmax_expsum_f32",
            Template::SoftmaxDiv => "k_softmax_div_f32",
            Template::Im2col => "k_im2col_f32",
            Template::GemmTiled => "k_gemm_tiled_f32",
            Template::GemmMicro => "k_gemm_micro2x2_f32",
            Template::Gemv => "k_gemv_f32",
            Template::Depthwise => "k_depthwise_f32",
            Template::PoolMax => "k_pool_max_f32",
            Template::PoolAvg => "k_pool_avg_f32",
            Template::GapAvg => "k_gap_avg_f32",
            Template::GapMax => "k_gap_max_f32",
            Template::PadCopy => "k_pad_copy_f32",
        }
    }

    /// Build the kernel body for this template.
    pub fn build(&self) -> Kernel {
        match self {
            Template::CopyF32 => copy_f32(),
            Template::FillF32 => fill_f32(),
            Template::EwAdd => ew_binary(BinOp::Add, Template::EwAdd.name()),
            Template::EwMul => ew_binary(BinOp::Mul, Template::EwMul.name()),
            Template::EwMulBcast => ew_mul_bcast(),
            Template::AffineCh => affine_ch(),
            Template::ActRelu => act_kernel(Act::Relu),
            Template::ActRelu6 => act_kernel(Act::Relu6),
            Template::ActSigmoid => act_kernel(Act::Sigmoid),
            Template::ActTanh => act_kernel(Act::Tanh),
            Template::ActSwish => act_kernel(Act::Swish),
            Template::ActHardSwish => act_kernel(Act::HardSwish),
            Template::SoftmaxMax => softmax_reduce(ReduceKind::Max),
            Template::SoftmaxExpSum => softmax_reduce(ReduceKind::ExpSum),
            Template::SoftmaxDiv => softmax_div(),
            Template::Im2col => im2col(),
            Template::GemmTiled => gemm_tiled(),
            Template::GemmMicro => gemm_micro(),
            Template::Gemv => gemv(),
            Template::Depthwise => depthwise(),
            Template::PoolMax => pool(true),
            Template::PoolAvg => pool(false),
            Template::GapAvg => gap(false),
            Template::GapMax => gap(true),
            Template::PadCopy => pad_copy(),
        }
    }
}

/// Build every template kernel in `Template::ALL` order.
pub fn build_all() -> Vec<Kernel> {
    Template::ALL.iter().map(|t| t.build()).collect()
}

/// Index of a template within [`build_all`]'s output.
pub fn template_index(t: Template) -> usize {
    Template::ALL.iter().position(|x| *x == t).expect("in ALL")
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

/// Convert a u32 register holding an element index into a global address
/// `base + 4*idx`, returning the 64-bit address register.
fn elem_addr(kb: &mut KernelBuilder, base: Reg, idx: impl Into<Operand>) -> Reg {
    let off32 = kb.bin_r(BinOp::Shl, Type::B32, idx, Operand::ImmI(2));
    let off64 = kb.rd();
    kb.cvt(Type::U64, Type::U32, off64, off32);
    kb.bin_r(BinOp::Add, Type::U64, base, off64)
}

/// Fused bias epilogue: `acc += has_bias ? bias[idx] : 0`, branchless
/// (the guarded load is predicated, not branched around, so control flow
/// stays affine for the dynamic code analysis).
fn emit_bias_add(kb: &mut KernelBuilder, acc: Reg, bias: Reg, idx: Reg, has_bias: Reg) {
    let p = kb.p();
    kb.setp(CmpOp::Ne, Type::U32, p, has_bias, Operand::ImmI(0));
    let addr = elem_addr(kb, bias, idx);
    let v = kb.f();
    kb.with_guard(p, false, |kb| {
        kb.ld(Space::Global, Type::F32, v, Address::reg(addr));
    });
    let zero = kb.f();
    kb.mov(Type::F32, zero, Operand::ImmF(0.0));
    let vb = kb.f();
    kb.selp(Type::F32, vb, v, zero, p);
    kb.bin(BinOp::Add, Type::F32, acc, acc, vb);
}

/// Standard elementwise prologue: load `n` and pointers, compute gid, guard.
/// Returns `(gid, exit_label)`; the caller must place `exit_label` and `ret`.
struct EwCtx {
    gid: Reg,
    exit: ptx::inst::LabelId,
}

fn ew_prologue(kb: &mut KernelBuilder, n: Reg) -> EwCtx {
    let (gid, exit) = kb.guard_gid(n);
    EwCtx { gid, exit }
}

// ---------------------------------------------------------------------------
// elementwise kernels
// ---------------------------------------------------------------------------

/// `out[i] = in[i]` — vectorized x4 in the style of the paper's Fig. 2:
/// each thread moves four contiguous floats; the guard compares `4*gid` to
/// the element count.
fn copy_f32() -> Kernel {
    let mut kb = KernelBuilder::new(Template::CopyF32.name(), BLOCK);
    let p_in = kb.param("in", Type::U64);
    let p_out = kb.param("out", Type::U64);
    let p_n = kb.param("n", Type::U32);
    let src = kb.ld_param(&p_in, Type::U64);
    let dst = kb.ld_param(&p_out, Type::U64);
    let n = kb.ld_param(&p_n, Type::U32);

    let gid = kb.global_id();
    let g4 = kb.bin_r(BinOp::Shl, Type::B32, gid, Operand::ImmI(2));
    let p = kb.p();
    kb.setp(CmpOp::Ge, Type::U32, p, g4, n);
    let exit = kb.label();
    kb.bra_if(p, false, exit);

    let sa = elem_addr(&mut kb, src, g4);
    let da = elem_addr(&mut kb, dst, g4);
    for lane in 0..4u32 {
        // tail lanes are predicated off rather than branched around
        let f = kb.f();
        let off = (lane * 4) as i64;
        let lane_idx = kb.bin_r(BinOp::Add, Type::U32, g4, Operand::ImmI(lane as i64));
        let pin = kb.p();
        kb.setp(CmpOp::Lt, Type::U32, pin, lane_idx, n);
        kb.with_guard(pin, false, |kb| {
            kb.ld(Space::Global, Type::F32, f, Address::reg_off(sa, off));
            kb.st(Space::Global, Type::F32, Address::reg_off(da, off), f);
        });
    }
    kb.place_label(exit);
    kb.ret();
    kb.finish()
}

/// `out[i] = value` (used to zero padded tensors).
fn fill_f32() -> Kernel {
    let mut kb = KernelBuilder::new(Template::FillF32.name(), BLOCK);
    let p_out = kb.param("out", Type::U64);
    let p_n = kb.param("n", Type::U32);
    let p_bits = kb.param("value_bits", Type::U32);
    let dst = kb.ld_param(&p_out, Type::U64);
    let n = kb.ld_param(&p_n, Type::U32);
    let bits = kb.ld_param(&p_bits, Type::U32);

    let ctx = ew_prologue(&mut kb, n);
    let f = kb.f();
    // reinterpret the u32 bit pattern as f32
    kb.cvt(Type::F32, Type::B32, f, bits);
    let da = elem_addr(&mut kb, dst, ctx.gid);
    kb.st(Space::Global, Type::F32, Address::reg(da), f);
    kb.place_label(ctx.exit);
    kb.ret();
    kb.finish()
}

/// `out[i] = a[i] <op> b[i]`.
fn ew_binary(op: BinOp, name: &str) -> Kernel {
    let mut kb = KernelBuilder::new(name, BLOCK);
    let p_a = kb.param("a", Type::U64);
    let p_b = kb.param("b", Type::U64);
    let p_out = kb.param("out", Type::U64);
    let p_n = kb.param("n", Type::U32);
    let a = kb.ld_param(&p_a, Type::U64);
    let b = kb.ld_param(&p_b, Type::U64);
    let o = kb.ld_param(&p_out, Type::U64);
    let n = kb.ld_param(&p_n, Type::U32);

    let ctx = ew_prologue(&mut kb, n);
    let aa = elem_addr(&mut kb, a, ctx.gid);
    let ba = elem_addr(&mut kb, b, ctx.gid);
    let oa = elem_addr(&mut kb, o, ctx.gid);
    let fa = kb.f();
    let fb = kb.f();
    kb.ld(Space::Global, Type::F32, fa, Address::reg(aa));
    kb.ld(Space::Global, Type::F32, fb, Address::reg(ba));
    let fo = kb.bin_r(op, Type::F32, fa, fb);
    kb.st(Space::Global, Type::F32, Address::reg(oa), fo);
    kb.place_label(ctx.exit);
    kb.ret();
    kb.finish()
}

/// `out[i] = a[i] * gate[i % c]` — squeeze-and-excitation channel gating
/// (HWC layout: channel index is `i % c`).
fn ew_mul_bcast() -> Kernel {
    let mut kb = KernelBuilder::new(Template::EwMulBcast.name(), BLOCK);
    let p_a = kb.param("a", Type::U64);
    let p_g = kb.param("gate", Type::U64);
    let p_out = kb.param("out", Type::U64);
    let p_n = kb.param("n", Type::U32);
    let p_c = kb.param("c", Type::U32);
    let a = kb.ld_param(&p_a, Type::U64);
    let g = kb.ld_param(&p_g, Type::U64);
    let o = kb.ld_param(&p_out, Type::U64);
    let n = kb.ld_param(&p_n, Type::U32);
    let c = kb.ld_param(&p_c, Type::U32);

    let ctx = ew_prologue(&mut kb, n);
    let ch = kb.bin_r(BinOp::Rem, Type::U32, ctx.gid, c);
    let aa = elem_addr(&mut kb, a, ctx.gid);
    let ga = elem_addr(&mut kb, g, ch);
    let oa = elem_addr(&mut kb, o, ctx.gid);
    let fa = kb.f();
    let fg = kb.f();
    kb.ld(Space::Global, Type::F32, fa, Address::reg(aa));
    kb.ld(Space::Global, Type::F32, fg, Address::reg(ga));
    let fo = kb.bin_r(BinOp::Mul, Type::F32, fa, fg);
    kb.st(Space::Global, Type::F32, Address::reg(oa), fo);
    kb.place_label(ctx.exit);
    kb.ret();
    kb.finish()
}

/// `out[i] = x[i] * scale[i % c] + shift[i % c]` — inference batch norm,
/// group norm and convolution bias in one kernel.
fn affine_ch() -> Kernel {
    let mut kb = KernelBuilder::new(Template::AffineCh.name(), BLOCK);
    let p_x = kb.param("x", Type::U64);
    let p_s = kb.param("scale", Type::U64);
    let p_t = kb.param("shift", Type::U64);
    let p_out = kb.param("out", Type::U64);
    let p_n = kb.param("n", Type::U32);
    let p_c = kb.param("c", Type::U32);
    let x = kb.ld_param(&p_x, Type::U64);
    let s = kb.ld_param(&p_s, Type::U64);
    let t = kb.ld_param(&p_t, Type::U64);
    let o = kb.ld_param(&p_out, Type::U64);
    let n = kb.ld_param(&p_n, Type::U32);
    let c = kb.ld_param(&p_c, Type::U32);

    let ctx = ew_prologue(&mut kb, n);
    let ch = kb.bin_r(BinOp::Rem, Type::U32, ctx.gid, c);
    let xa = elem_addr(&mut kb, x, ctx.gid);
    let sa = elem_addr(&mut kb, s, ch);
    let ta = elem_addr(&mut kb, t, ch);
    let oa = elem_addr(&mut kb, o, ctx.gid);
    let fx = kb.f();
    let fs = kb.f();
    let ft = kb.f();
    kb.ld(Space::Global, Type::F32, fx, Address::reg(xa));
    kb.ld(Space::Global, Type::F32, fs, Address::reg(sa));
    kb.ld(Space::Global, Type::F32, ft, Address::reg(ta));
    let fo = kb.f();
    kb.mad(Type::F32, fo, fx, fs, ft);
    kb.st(Space::Global, Type::F32, Address::reg(oa), fo);
    kb.place_label(ctx.exit);
    kb.ret();
    kb.finish()
}

#[derive(Clone, Copy)]
enum Act {
    Relu,
    Relu6,
    Sigmoid,
    Tanh,
    Swish,
    HardSwish,
}

impl Act {
    fn template(self) -> Template {
        match self {
            Act::Relu => Template::ActRelu,
            Act::Relu6 => Template::ActRelu6,
            Act::Sigmoid => Template::ActSigmoid,
            Act::Tanh => Template::ActTanh,
            Act::Swish => Template::ActSwish,
            Act::HardSwish => Template::ActHardSwish,
        }
    }
}

/// `sigmoid(x) = 1 / (1 + 2^(-x * log2(e)))` in SFU-friendly ops.
fn emit_sigmoid(kb: &mut KernelBuilder, x: Reg) -> Reg {
    const NEG_LOG2_E: f32 = -std::f32::consts::LOG2_E;
    let scaled = kb.bin_r(BinOp::Mul, Type::F32, x, Operand::ImmF(NEG_LOG2_E));
    let e = kb.f();
    kb.un(UnOp::Ex2, Type::F32, e, scaled);
    let d = kb.bin_r(BinOp::Add, Type::F32, e, Operand::ImmF(1.0));
    let r = kb.f();
    kb.un(UnOp::Rcp, Type::F32, r, d);
    r
}

fn emit_act(kb: &mut KernelBuilder, a: Act, x: Reg) -> Reg {
    match a {
        Act::Relu => kb.bin_r(BinOp::Max, Type::F32, x, Operand::ImmF(0.0)),
        Act::Relu6 => {
            let lo = kb.bin_r(BinOp::Max, Type::F32, x, Operand::ImmF(0.0));
            kb.bin_r(BinOp::Min, Type::F32, lo, Operand::ImmF(6.0))
        }
        Act::Sigmoid => emit_sigmoid(kb, x),
        Act::Tanh => {
            // tanh(x) = 2*sigmoid(2x) - 1
            let x2 = kb.bin_r(BinOp::Mul, Type::F32, x, Operand::ImmF(2.0));
            let s = emit_sigmoid(kb, x2);
            let s2 = kb.bin_r(BinOp::Mul, Type::F32, s, Operand::ImmF(2.0));
            kb.bin_r(BinOp::Add, Type::F32, s2, Operand::ImmF(-1.0))
        }
        Act::Swish => {
            let s = emit_sigmoid(kb, x);
            kb.bin_r(BinOp::Mul, Type::F32, x, s)
        }
        Act::HardSwish => {
            let t = kb.bin_r(BinOp::Add, Type::F32, x, Operand::ImmF(3.0));
            let t = kb.bin_r(BinOp::Max, Type::F32, t, Operand::ImmF(0.0));
            let t = kb.bin_r(BinOp::Min, Type::F32, t, Operand::ImmF(6.0));
            let t = kb.bin_r(BinOp::Mul, Type::F32, x, t);
            kb.bin_r(BinOp::Mul, Type::F32, t, Operand::ImmF(1.0 / 6.0))
        }
    }
}

fn act_kernel(a: Act) -> Kernel {
    let mut kb = KernelBuilder::new(a.template().name(), BLOCK);
    let p_x = kb.param("x", Type::U64);
    let p_out = kb.param("out", Type::U64);
    let p_n = kb.param("n", Type::U32);
    let x = kb.ld_param(&p_x, Type::U64);
    let o = kb.ld_param(&p_out, Type::U64);
    let n = kb.ld_param(&p_n, Type::U32);

    let ctx = ew_prologue(&mut kb, n);
    let xa = elem_addr(&mut kb, x, ctx.gid);
    let oa = elem_addr(&mut kb, o, ctx.gid);
    let fx = kb.f();
    kb.ld(Space::Global, Type::F32, fx, Address::reg(xa));
    let fo = emit_act(&mut kb, a, fx);
    kb.st(Space::Global, Type::F32, Address::reg(oa), fo);
    kb.place_label(ctx.exit);
    kb.ret();
    kb.finish()
}

// ---------------------------------------------------------------------------
// softmax (single-block strided reductions)
// ---------------------------------------------------------------------------

enum ReduceKind {
    Max,
    ExpSum,
}

/// Single-block reduction over `n` elements: a strided accumulation loop
/// followed by a log2(BLOCK) shared-memory tree with barriers. `ExpSum`
/// additionally writes `exp(x - mx)` to `out` during the strided pass.
fn softmax_reduce(kind: ReduceKind) -> Kernel {
    let name = match kind {
        ReduceKind::Max => Template::SoftmaxMax.name(),
        ReduceKind::ExpSum => Template::SoftmaxExpSum.name(),
    };
    let mut kb = KernelBuilder::new(name, BLOCK);
    let p_x = kb.param("x", Type::U64);
    let p_aux = kb.param("aux", Type::U64); // Max: unused; ExpSum: the max
    let p_out = kb.param("out", Type::U64); // Max: result cell; ExpSum: exp vector
    let p_res = kb.param("result", Type::U64); // reduction result cell
    let p_n = kb.param("n", Type::U32);
    let x = kb.ld_param(&p_x, Type::U64);
    let aux = kb.ld_param(&p_aux, Type::U64);
    let out = kb.ld_param(&p_out, Type::U64);
    let res = kb.ld_param(&p_res, Type::U64);
    let n = kb.ld_param(&p_n, Type::U32);

    let smem_off = kb.shared(BLOCK * 4);
    let tid = kb.special(ptx::types::SpecialReg::TidX);

    // accumulator init
    let acc = kb.f();
    match kind {
        ReduceKind::Max => kb.mov(Type::F32, acc, Operand::ImmF(f32::MIN)),
        ReduceKind::ExpSum => kb.mov(Type::F32, acc, Operand::ImmF(0.0)),
    }
    let mx = kb.f();
    if matches!(kind, ReduceKind::ExpSum) {
        kb.ld(Space::Global, Type::F32, mx, Address::reg(aux));
    }

    // strided loop: for (i = tid; i < n; i += BLOCK)
    let i = kb.r();
    kb.mov(Type::U32, i, tid);
    let p_enter = kb.p();
    kb.setp(CmpOp::Ge, Type::U32, p_enter, i, n);
    let after_loop = kb.label();
    kb.bra_if(p_enter, false, after_loop);
    let head = kb.label();
    kb.place_label(head);
    {
        let a = elem_addr(&mut kb, x, i);
        let v = kb.f();
        kb.ld(Space::Global, Type::F32, v, Address::reg(a));
        match kind {
            ReduceKind::Max => {
                kb.bin(BinOp::Max, Type::F32, acc, acc, v);
            }
            ReduceKind::ExpSum => {
                let d = kb.bin_r(BinOp::Sub, Type::F32, v, mx);
                let sc = kb.bin_r(
                    BinOp::Mul,
                    Type::F32,
                    d,
                    Operand::ImmF(std::f32::consts::LOG2_E),
                );
                let e = kb.f();
                kb.un(UnOp::Ex2, Type::F32, e, sc);
                let oa = elem_addr(&mut kb, out, i);
                kb.st(Space::Global, Type::F32, Address::reg(oa), e);
                kb.bin(BinOp::Add, Type::F32, acc, acc, e);
            }
        }
        kb.bin(BinOp::Add, Type::U32, i, i, Operand::ImmI(BLOCK as i64));
        let p = kb.p();
        kb.setp(CmpOp::Lt, Type::U32, p, i, n);
        kb.bra_if(p, false, head);
    }
    kb.place_label(after_loop);

    // shared-memory tree reduction
    let saddr = kb.bin_r(BinOp::Shl, Type::B32, tid, Operand::ImmI(2));
    let saddr = kb.bin_r(BinOp::Add, Type::U32, saddr, Operand::ImmI(smem_off as i64));
    // store via a 64-bit shared address register
    let saddr64 = kb.rd();
    kb.cvt(Type::U64, Type::U32, saddr64, saddr);
    kb.st(Space::Shared, Type::F32, Address::reg(saddr64), acc);
    kb.bar();
    let mut stride = BLOCK / 2;
    while stride > 0 {
        let p = kb.p();
        kb.setp(CmpOp::Lt, Type::U32, p, tid, Operand::ImmI(stride as i64));
        let skip = kb.label();
        kb.bra_if(p, true, skip);
        {
            let other = kb.f();
            let mine = kb.f();
            kb.ld(
                Space::Shared,
                Type::F32,
                other,
                Address::reg_off(saddr64, (stride * 4) as i64),
            );
            kb.ld(Space::Shared, Type::F32, mine, Address::reg(saddr64));
            let combined = match kind {
                ReduceKind::Max => kb.bin_r(BinOp::Max, Type::F32, mine, other),
                ReduceKind::ExpSum => kb.bin_r(BinOp::Add, Type::F32, mine, other),
            };
            kb.st(Space::Shared, Type::F32, Address::reg(saddr64), combined);
        }
        kb.place_label(skip);
        kb.bar();
        stride /= 2;
    }
    // thread 0 writes the result
    let p0 = kb.p();
    kb.setp(CmpOp::Eq, Type::U32, p0, tid, Operand::ImmI(0));
    let done = kb.label();
    kb.bra_if(p0, true, done);
    {
        let r = kb.f();
        kb.ld(Space::Shared, Type::F32, r, Address::reg(saddr64));
        kb.st(Space::Global, Type::F32, Address::reg(res), r);
    }
    kb.place_label(done);
    kb.ret();
    kb.finish()
}

/// `out[i] = exp_vec[i] / sum` — the final softmax normalization.
fn softmax_div() -> Kernel {
    let mut kb = KernelBuilder::new(Template::SoftmaxDiv.name(), BLOCK);
    let p_e = kb.param("exp_vec", Type::U64);
    let p_sum = kb.param("sum", Type::U64);
    let p_out = kb.param("out", Type::U64);
    let p_n = kb.param("n", Type::U32);
    let e = kb.ld_param(&p_e, Type::U64);
    let sum = kb.ld_param(&p_sum, Type::U64);
    let o = kb.ld_param(&p_out, Type::U64);
    let n = kb.ld_param(&p_n, Type::U32);

    let ctx = ew_prologue(&mut kb, n);
    let fs = kb.f();
    kb.ld(Space::Global, Type::F32, fs, Address::reg(sum));
    let inv = kb.f();
    kb.un(UnOp::Rcp, Type::F32, inv, fs);
    let ea = elem_addr(&mut kb, e, ctx.gid);
    let oa = elem_addr(&mut kb, o, ctx.gid);
    let fe = kb.f();
    kb.ld(Space::Global, Type::F32, fe, Address::reg(ea));
    let fo = kb.bin_r(BinOp::Mul, Type::F32, fe, inv);
    kb.st(Space::Global, Type::F32, Address::reg(oa), fo);
    kb.place_label(ctx.exit);
    kb.ret();
    kb.finish()
}

// ---------------------------------------------------------------------------
// convolution lowering kernels
// ---------------------------------------------------------------------------

/// im2col: one thread per (output pixel, input channel); loops over the
/// `kh*kw` window writing the patch column. Border handling is branchless:
/// out-of-range taps load from a clamped address and a `selp` substitutes
/// zero.
///
/// Params: `in, out, total(=oh*ow*c), window(=kh*kw), c, w(in width), oh,
/// ow, kw, sh, sw, pad_t, pad_l, h(in height)`.
fn im2col() -> Kernel {
    let mut kb = KernelBuilder::new(Template::Im2col.name(), BLOCK);
    let names: Vec<String> = [
        ("in", Type::U64),
        ("out", Type::U64),
        ("total", Type::U32),
        ("window", Type::U32),
        ("c", Type::U32),
        ("w", Type::U32),
        ("oh", Type::U32),
        ("ow", Type::U32),
        ("kw", Type::U32),
        ("sh", Type::U32),
        ("sw", Type::U32),
        ("pad_t", Type::U32),
        ("pad_l", Type::U32),
        ("h", Type::U32),
    ]
    .iter()
    .map(|(n, t)| kb.param(n, *t))
    .collect();
    let src = kb.ld_param(&names[0], Type::U64);
    let dst = kb.ld_param(&names[1], Type::U64);
    let total = kb.ld_param(&names[2], Type::U32);
    let window = kb.ld_param(&names[3], Type::U32);
    let c = kb.ld_param(&names[4], Type::U32);
    let w = kb.ld_param(&names[5], Type::U32);
    let _oh = kb.ld_param(&names[6], Type::U32);
    let ow = kb.ld_param(&names[7], Type::U32);
    let kw = kb.ld_param(&names[8], Type::U32);
    let sh = kb.ld_param(&names[9], Type::U32);
    let sw = kb.ld_param(&names[10], Type::U32);
    let pad_t = kb.ld_param(&names[11], Type::U32);
    let pad_l = kb.ld_param(&names[12], Type::U32);
    let h = kb.ld_param(&names[13], Type::U32);

    let (gid, exit) = kb.guard_gid(total);
    // decompose gid -> (pixel, channel); HWC: ch = gid % c, pix = gid / c
    let ch = kb.bin_r(BinOp::Rem, Type::U32, gid, c);
    let pix = kb.bin_r(BinOp::Div, Type::U32, gid, c);
    let oy = kb.bin_r(BinOp::Div, Type::U32, pix, ow);
    let ox = kb.bin_r(BinOp::Rem, Type::U32, pix, ow);
    // top-left input coordinate (may be "negative": computed as unsigned,
    // border selp masks out-of-range taps)
    let iy0 = kb.bin_r(BinOp::Mul, Type::U32, oy, sh);
    let iy0 = kb.bin_r(BinOp::Sub, Type::U32, iy0, pad_t);
    let ix0 = kb.bin_r(BinOp::Mul, Type::U32, ox, sw);
    let ix0 = kb.bin_r(BinOp::Sub, Type::U32, ix0, pad_l);

    kb.counted_loop(window, |kb, t| {
        let dy = kb.bin_r(BinOp::Div, Type::U32, t, kw);
        let dx = kb.bin_r(BinOp::Rem, Type::U32, t, kw);
        let iy = kb.bin_r(BinOp::Add, Type::U32, iy0, dy);
        let ix = kb.bin_r(BinOp::Add, Type::U32, ix0, dx);
        // in-range test (unsigned wraparound makes "negative" huge)
        let py = kb.p();
        kb.setp(CmpOp::Lt, Type::U32, py, iy, h);
        let px = kb.p();
        kb.setp(CmpOp::Lt, Type::U32, px, ix, w);
        // linear input index (iy*w + ix)*c + ch
        let lin = kb.r();
        kb.mad(Type::S32, lin, iy, w, ix);
        let lin2 = kb.r();
        kb.mad(Type::S32, lin2, lin, c, ch);
        let sa = elem_addr(kb, src, lin2);
        let v = kb.f();
        // guarded load + selp-zero for borders (branchless)
        kb.with_guard(py, false, |kb| {
            kb.ld(Space::Global, Type::F32, v, Address::reg(sa));
        });
        let zero = kb.f();
        kb.mov(Type::F32, zero, Operand::ImmF(0.0));
        let vy = kb.f();
        kb.selp(Type::F32, vy, v, zero, py);
        let vx = kb.f();
        kb.selp(Type::F32, vx, vy, zero, px);
        // output index: (pix*window + t)*c + ch  (column-major patch layout)
        let orow = kb.r();
        kb.mad(Type::S32, orow, pix, window, t);
        let oidx = kb.r();
        kb.mad(Type::S32, oidx, orow, c, ch);
        let da = elem_addr(kb, dst, oidx);
        kb.st(Space::Global, Type::F32, Address::reg(da), vx);
    });
    kb.place_label(exit);
    kb.ret();
    kb.finish()
}

/// Shared-memory tiled GEMM: `C[m,n] = A[m,k] x B[k,n]`, with an optional
/// fused bias epilogue (`c[i,j] += bias[j]` when `has_bias != 0`) — the way
/// cuDNN applies convolution bias, saving a whole elementwise pass.
/// One thread per C element (flattened 1D grid); 16x16 tiles staged through
/// shared memory with two barriers per tile.
///
/// Params: `a, b, c_out, m, n, k, tiles(=ceil(k/16)), bias, has_bias`.
fn gemm_tiled() -> Kernel {
    let mut kb = KernelBuilder::new(Template::GemmTiled.name(), BLOCK);
    let p_a = kb.param("a", Type::U64);
    let p_b = kb.param("b", Type::U64);
    let p_c = kb.param("c_out", Type::U64);
    let p_m = kb.param("m", Type::U32);
    let p_n = kb.param("n", Type::U32);
    let p_k = kb.param("k", Type::U32);
    let p_tiles = kb.param("tiles", Type::U32);
    let p_bias = kb.param("bias", Type::U64);
    let p_hb = kb.param("has_bias", Type::U32);
    let a = kb.ld_param(&p_a, Type::U64);
    let b = kb.ld_param(&p_b, Type::U64);
    let co = kb.ld_param(&p_c, Type::U64);
    let m = kb.ld_param(&p_m, Type::U32);
    let n = kb.ld_param(&p_n, Type::U32);
    let k = kb.ld_param(&p_k, Type::U32);
    let tiles = kb.ld_param(&p_tiles, Type::U32);
    let bias = kb.ld_param(&p_bias, Type::U64);
    let has_bias = kb.ld_param(&p_hb, Type::U32);

    let smem_a = kb.shared(TILE * TILE * 4);
    let smem_b = kb.shared(TILE * TILE * 4);

    // guard: gid < m*n
    let total = kb.bin_r(BinOp::Mul, Type::U32, m, n);
    let (gid, exit) = kb.guard_gid(total);
    let row = kb.bin_r(BinOp::Div, Type::U32, gid, n);
    let col = kb.bin_r(BinOp::Rem, Type::U32, gid, n);
    let tid = kb.special(ptx::types::SpecialReg::TidX);
    let trow = kb.bin_r(BinOp::Shr, Type::B32, tid, Operand::ImmI(4));
    let tcol = kb.bin_r(BinOp::And, Type::B32, tid, Operand::ImmI(15));

    let acc = kb.f();
    kb.mov(Type::F32, acc, Operand::ImmF(0.0));

    // shared addresses for this thread's staging slot
    let slot = kb.bin_r(BinOp::Shl, Type::B32, tid, Operand::ImmI(2));
    let sa_addr = kb.bin_r(BinOp::Add, Type::U32, slot, Operand::ImmI(smem_a as i64));
    let sa64 = kb.rd();
    kb.cvt(Type::U64, Type::U32, sa64, sa_addr);
    let sb_addr = kb.bin_r(BinOp::Add, Type::U32, slot, Operand::ImmI(smem_b as i64));
    let sb64 = kb.rd();
    kb.cvt(Type::U64, Type::U32, sb64, sb_addr);

    kb.counted_loop(tiles, |kb, t| {
        // cooperative staging: this thread loads A[row, t*16+tcol] and
        // B[t*16+trow, col] (clamped via selp-free modular wrap — counts are
        // what matter; addresses are opaque to the analysis)
        let kbase = kb.bin_r(BinOp::Shl, Type::B32, t, Operand::ImmI(4));
        let ka = kb.bin_r(BinOp::Add, Type::U32, kbase, tcol);
        let a_idx = kb.r();
        kb.mad(Type::S32, a_idx, row, k, ka);
        let a_addr = elem_addr(kb, a, a_idx);
        let va = kb.f();
        kb.ld(Space::Global, Type::F32, va, Address::reg(a_addr));
        kb.st(Space::Shared, Type::F32, Address::reg(sa64), va);

        let kb_row = kb.bin_r(BinOp::Add, Type::U32, kbase, trow);
        let b_idx = kb.r();
        kb.mad(Type::S32, b_idx, kb_row, n, col);
        let b_addr = elem_addr(kb, b, b_idx);
        let vb = kb.f();
        kb.ld(Space::Global, Type::F32, vb, Address::reg(b_addr));
        kb.st(Space::Shared, Type::F32, Address::reg(sb64), vb);
        kb.bar();

        // inner product over the 16-wide tile, fully unrolled
        for i in 0..TILE {
            let fa = kb.f();
            let fb = kb.f();
            kb.ld(
                Space::Shared,
                Type::F32,
                fa,
                Address::reg_off(sa64, (i * 4) as i64),
            );
            kb.ld(
                Space::Shared,
                Type::F32,
                fb,
                Address::reg_off(sb64, (i * 4) as i64),
            );
            kb.mad(Type::F32, acc, fa, fb, acc);
        }
        kb.bar();
    });

    // fused bias epilogue
    emit_bias_add(&mut kb, acc, bias, col, has_bias);
    let c_idx = kb.r();
    kb.mad(Type::S32, c_idx, row, n, col);
    let c_addr = elem_addr(&mut kb, co, c_idx);
    kb.st(Space::Global, Type::F32, Address::reg(c_addr), acc);
    kb.place_label(exit);
    kb.ret();
    kb.finish()
}

/// Register-microtiled GEMM: each thread computes a 2x2 block of C, so one
/// shared-memory load pair feeds two FMAs — double the arithmetic intensity
/// of [`gemm_tiled`] at the cost of more registers per thread. The classic
/// first step of GEMM optimization; exposed as a codegen ablation.
///
/// One thread per 2x2 output quad (flattened 1D grid over
/// `ceil(m/2) * ceil(n/2)` quads). Edge quads handle odd remainders with
/// predicated stores. Params: `a, b, c_out, m, n, k, tiles, nq(=ceil(n/2)),
/// bias, has_bias`.
fn gemm_micro() -> Kernel {
    let mut kb = KernelBuilder::new(Template::GemmMicro.name(), BLOCK);
    let p_a = kb.param("a", Type::U64);
    let p_b = kb.param("b", Type::U64);
    let p_c = kb.param("c_out", Type::U64);
    let p_m = kb.param("m", Type::U32);
    let p_n = kb.param("n", Type::U32);
    let p_k = kb.param("k", Type::U32);
    let p_tiles = kb.param("tiles", Type::U32);
    let p_nq = kb.param("nq", Type::U32);
    let p_bias = kb.param("bias", Type::U64);
    let p_hb = kb.param("has_bias", Type::U32);
    let a = kb.ld_param(&p_a, Type::U64);
    let b = kb.ld_param(&p_b, Type::U64);
    let co = kb.ld_param(&p_c, Type::U64);
    let m = kb.ld_param(&p_m, Type::U32);
    let n = kb.ld_param(&p_n, Type::U32);
    let k = kb.ld_param(&p_k, Type::U32);
    let tiles = kb.ld_param(&p_tiles, Type::U32);
    let nq = kb.ld_param(&p_nq, Type::U32);
    let bias = kb.ld_param(&p_bias, Type::U64);
    let has_bias = kb.ld_param(&p_hb, Type::U32);

    // per-thread staging slots: 2 A elements + 2 B elements per K-tile
    let smem_a = kb.shared(BLOCK * 2 * 4);
    let smem_b = kb.shared(BLOCK * 2 * 4);

    // guard: gid < ceil(m/2)*nq
    let mq = kb.bin_r(BinOp::Add, Type::U32, m, Operand::ImmI(1));
    let mq = kb.bin_r(BinOp::Shr, Type::B32, mq, Operand::ImmI(1));
    let total = kb.bin_r(BinOp::Mul, Type::U32, mq, nq);
    let (gid, exit) = kb.guard_gid(total);
    let qrow = kb.bin_r(BinOp::Div, Type::U32, gid, nq);
    let qcol = kb.bin_r(BinOp::Rem, Type::U32, gid, nq);
    let row0 = kb.bin_r(BinOp::Shl, Type::B32, qrow, Operand::ImmI(1));
    let col0 = kb.bin_r(BinOp::Shl, Type::B32, qcol, Operand::ImmI(1));
    let tid = kb.special(ptx::types::SpecialReg::TidX);

    // four accumulators
    let acc = [kb.f(), kb.f(), kb.f(), kb.f()];
    for &r in &acc {
        kb.mov(Type::F32, r, Operand::ImmF(0.0));
    }

    let slot8 = kb.bin_r(BinOp::Shl, Type::B32, tid, Operand::ImmI(3));
    let sa_addr = kb.bin_r(BinOp::Add, Type::U32, slot8, Operand::ImmI(smem_a as i64));
    let sa64 = kb.rd();
    kb.cvt(Type::U64, Type::U32, sa64, sa_addr);
    let sb_addr = kb.bin_r(BinOp::Add, Type::U32, slot8, Operand::ImmI(smem_b as i64));
    let sb64 = kb.rd();
    kb.cvt(Type::U64, Type::U32, sb64, sb_addr);

    kb.counted_loop(tiles, |kb, t| {
        let kbase = kb.bin_r(BinOp::Shl, Type::B32, t, Operand::ImmI(4));
        // cooperative staging: each thread loads its quad's two A rows at
        // one k-column and two B columns at one k-row
        for lane in 0..2u32 {
            let row = kb.bin_r(BinOp::Add, Type::U32, row0, Operand::ImmI(lane as i64));
            let kk = kb.bin_r(BinOp::And, Type::B32, tid, Operand::ImmI(15));
            let ka = kb.bin_r(BinOp::Add, Type::U32, kbase, kk);
            let a_idx = kb.r();
            kb.mad(Type::S32, a_idx, row, k, ka);
            let a_addr = elem_addr(kb, a, a_idx);
            let va = kb.f();
            kb.ld(Space::Global, Type::F32, va, Address::reg(a_addr));
            kb.st(
                Space::Shared,
                Type::F32,
                Address::reg_off(sa64, (lane * 4) as i64),
                va,
            );

            let col = kb.bin_r(BinOp::Add, Type::U32, col0, Operand::ImmI(lane as i64));
            let krow = kb.bin_r(BinOp::Shr, Type::B32, tid, Operand::ImmI(4));
            let krow = kb.bin_r(BinOp::Add, Type::U32, kbase, krow);
            let b_idx = kb.r();
            kb.mad(Type::S32, b_idx, krow, n, col);
            let b_addr = elem_addr(kb, b, b_idx);
            let vb = kb.f();
            kb.ld(Space::Global, Type::F32, vb, Address::reg(b_addr));
            kb.st(
                Space::Shared,
                Type::F32,
                Address::reg_off(sb64, (lane * 4) as i64),
                vb,
            );
        }
        kb.bar();

        // inner product: one (a0,a1,b0,b1) fetch feeds four FMAs
        for _ in 0..TILE {
            let a0 = kb.f();
            let a1 = kb.f();
            let b0 = kb.f();
            let b1 = kb.f();
            kb.ld(Space::Shared, Type::F32, a0, Address::reg(sa64));
            kb.ld(Space::Shared, Type::F32, a1, Address::reg_off(sa64, 4));
            kb.ld(Space::Shared, Type::F32, b0, Address::reg(sb64));
            kb.ld(Space::Shared, Type::F32, b1, Address::reg_off(sb64, 4));
            kb.mad(Type::F32, acc[0], a0, b0, acc[0]);
            kb.mad(Type::F32, acc[1], a0, b1, acc[1]);
            kb.mad(Type::F32, acc[2], a1, b0, acc[2]);
            kb.mad(Type::F32, acc[3], a1, b1, acc[3]);
        }
        kb.bar();
    });

    // predicated edge-aware stores of the 2x2 quad
    for (qi, &r) in acc.iter().enumerate() {
        let dr = (qi / 2) as i64;
        let dc = (qi % 2) as i64;
        let row = kb.bin_r(BinOp::Add, Type::U32, row0, Operand::ImmI(dr));
        let col = kb.bin_r(BinOp::Add, Type::U32, col0, Operand::ImmI(dc));
        let pr = kb.p();
        kb.setp(CmpOp::Lt, Type::U32, pr, row, m);
        let pc = kb.p();
        kb.setp(CmpOp::Lt, Type::U32, pc, col, n);
        emit_bias_add(&mut kb, r, bias, col, has_bias);
        // fold the two bound checks into one predicate via selp on an
        // integer flag (branchless, keeps control flow affine)
        let f1 = kb.r();
        kb.selp(Type::U32, f1, Operand::ImmI(1), Operand::ImmI(0), pr);
        let f2 = kb.r();
        kb.selp(Type::U32, f2, f1, Operand::ImmI(0), pc);
        let pboth = kb.p();
        kb.setp(CmpOp::Eq, Type::U32, pboth, f2, Operand::ImmI(1));
        let idx = kb.r();
        kb.mad(Type::S32, idx, row, n, col);
        let addr = elem_addr(&mut kb, co, idx);
        kb.with_guard(pboth, false, |kb| {
            kb.st(Space::Global, Type::F32, Address::reg(addr), r);
        });
    }
    kb.place_label(exit);
    kb.ret();
    kb.finish()
}

/// GEMV for dense layers: one thread per output row, serial dot product
/// with a fused bias epilogue.
/// Params: `a(weights), x, y, m(rows/outputs), k(cols/inputs), bias,
/// has_bias`.
fn gemv() -> Kernel {
    let mut kb = KernelBuilder::new(Template::Gemv.name(), BLOCK);
    let p_a = kb.param("a", Type::U64);
    let p_x = kb.param("x", Type::U64);
    let p_y = kb.param("y", Type::U64);
    let p_m = kb.param("m", Type::U32);
    let p_k = kb.param("k", Type::U32);
    let p_bias = kb.param("bias", Type::U64);
    let p_hb = kb.param("has_bias", Type::U32);
    let a = kb.ld_param(&p_a, Type::U64);
    let x = kb.ld_param(&p_x, Type::U64);
    let y = kb.ld_param(&p_y, Type::U64);
    let m = kb.ld_param(&p_m, Type::U32);
    let k = kb.ld_param(&p_k, Type::U32);
    let bias = kb.ld_param(&p_bias, Type::U64);
    let has_bias = kb.ld_param(&p_hb, Type::U32);

    let (gid, exit) = kb.guard_gid(m);
    let acc = kb.f();
    kb.mov(Type::F32, acc, Operand::ImmF(0.0));
    let row_base = kb.bin_r(BinOp::Mul, Type::U32, gid, k);
    kb.counted_loop(k, |kb, i| {
        let a_idx = kb.bin_r(BinOp::Add, Type::U32, row_base, i);
        let aa = elem_addr(kb, a, a_idx);
        let xa = elem_addr(kb, x, i);
        let fa = kb.f();
        let fx = kb.f();
        kb.ld(Space::Global, Type::F32, fa, Address::reg(aa));
        kb.ld(Space::Global, Type::F32, fx, Address::reg(xa));
        kb.mad(Type::F32, acc, fa, fx, acc);
    });
    emit_bias_add(&mut kb, acc, bias, gid, has_bias);
    let ya = elem_addr(&mut kb, y, gid);
    kb.st(Space::Global, Type::F32, Address::reg(ya), acc);
    kb.place_label(exit);
    kb.ret();
    kb.finish()
}

/// Depthwise convolution: one thread per output element, loop over the
/// window with branchless border handling.
/// Params: `in, wgt, out, total, window, c, w, ow, kw, sh, sw, pad_t,
/// pad_l, h, bias, has_bias` (fused per-channel bias epilogue).
fn depthwise() -> Kernel {
    let mut kb = KernelBuilder::new(Template::Depthwise.name(), BLOCK);
    let names: Vec<String> = [
        ("in", Type::U64),
        ("wgt", Type::U64),
        ("out", Type::U64),
        ("total", Type::U32),
        ("window", Type::U32),
        ("c", Type::U32),
        ("w", Type::U32),
        ("ow", Type::U32),
        ("kw", Type::U32),
        ("sh", Type::U32),
        ("sw", Type::U32),
        ("pad_t", Type::U32),
        ("pad_l", Type::U32),
        ("h", Type::U32),
        ("bias", Type::U64),
        ("has_bias", Type::U32),
    ]
    .iter()
    .map(|(n, t)| kb.param(n, *t))
    .collect();
    let src = kb.ld_param(&names[0], Type::U64);
    let wgt = kb.ld_param(&names[1], Type::U64);
    let dst = kb.ld_param(&names[2], Type::U64);
    let total = kb.ld_param(&names[3], Type::U32);
    let window = kb.ld_param(&names[4], Type::U32);
    let c = kb.ld_param(&names[5], Type::U32);
    let w = kb.ld_param(&names[6], Type::U32);
    let ow = kb.ld_param(&names[7], Type::U32);
    let kw = kb.ld_param(&names[8], Type::U32);
    let sh = kb.ld_param(&names[9], Type::U32);
    let sw = kb.ld_param(&names[10], Type::U32);
    let pad_t = kb.ld_param(&names[11], Type::U32);
    let pad_l = kb.ld_param(&names[12], Type::U32);
    let h = kb.ld_param(&names[13], Type::U32);
    let bias = kb.ld_param(&names[14], Type::U64);
    let has_bias = kb.ld_param(&names[15], Type::U32);

    let (gid, exit) = kb.guard_gid(total);
    let ch = kb.bin_r(BinOp::Rem, Type::U32, gid, c);
    let pix = kb.bin_r(BinOp::Div, Type::U32, gid, c);
    let oy = kb.bin_r(BinOp::Div, Type::U32, pix, ow);
    let ox = kb.bin_r(BinOp::Rem, Type::U32, pix, ow);
    let iy0 = kb.bin_r(BinOp::Mul, Type::U32, oy, sh);
    let iy0 = kb.bin_r(BinOp::Sub, Type::U32, iy0, pad_t);
    let ix0 = kb.bin_r(BinOp::Mul, Type::U32, ox, sw);
    let ix0 = kb.bin_r(BinOp::Sub, Type::U32, ix0, pad_l);

    let acc = kb.f();
    kb.mov(Type::F32, acc, Operand::ImmF(0.0));
    kb.counted_loop(window, |kb, t| {
        let dy = kb.bin_r(BinOp::Div, Type::U32, t, kw);
        let dx = kb.bin_r(BinOp::Rem, Type::U32, t, kw);
        let iy = kb.bin_r(BinOp::Add, Type::U32, iy0, dy);
        let ix = kb.bin_r(BinOp::Add, Type::U32, ix0, dx);
        let py = kb.p();
        kb.setp(CmpOp::Lt, Type::U32, py, iy, h);
        let px = kb.p();
        kb.setp(CmpOp::Lt, Type::U32, px, ix, w);
        let lin = kb.r();
        kb.mad(Type::S32, lin, iy, w, ix);
        let lin2 = kb.r();
        kb.mad(Type::S32, lin2, lin, c, ch);
        let sa = elem_addr(kb, src, lin2);
        let v = kb.f();
        kb.with_guard(py, false, |kb| {
            kb.ld(Space::Global, Type::F32, v, Address::reg(sa));
        });
        let zero = kb.f();
        kb.mov(Type::F32, zero, Operand::ImmF(0.0));
        let vy = kb.f();
        kb.selp(Type::F32, vy, v, zero, py);
        let vx = kb.f();
        kb.selp(Type::F32, vx, vy, zero, px);
        // weight index: t*c + ch
        let widx = kb.r();
        kb.mad(Type::S32, widx, t, c, ch);
        let wa = elem_addr(kb, wgt, widx);
        let fw = kb.f();
        kb.ld(Space::Global, Type::F32, fw, Address::reg(wa));
        kb.mad(Type::F32, acc, vx, fw, acc);
    });
    emit_bias_add(&mut kb, acc, bias, ch, has_bias);
    let da = elem_addr(&mut kb, dst, gid);
    kb.st(Space::Global, Type::F32, Address::reg(da), acc);
    kb.place_label(exit);
    kb.ret();
    kb.finish()
}

/// Spatial pooling: one thread per output element, window loop with
/// branchless borders. `is_max` selects max vs mean.
/// Params: `in, out, total, window, c, w, ow, kw, sh, sw, pad_t, pad_l, h,
/// inv_window_bits` (f32 bit pattern of `1/window`, unused for max).
fn pool(is_max: bool) -> Kernel {
    let name = if is_max {
        Template::PoolMax.name()
    } else {
        Template::PoolAvg.name()
    };
    let mut kb = KernelBuilder::new(name, BLOCK);
    let names: Vec<String> = [
        ("in", Type::U64),
        ("out", Type::U64),
        ("total", Type::U32),
        ("window", Type::U32),
        ("c", Type::U32),
        ("w", Type::U32),
        ("ow", Type::U32),
        ("kw", Type::U32),
        ("sh", Type::U32),
        ("sw", Type::U32),
        ("pad_t", Type::U32),
        ("pad_l", Type::U32),
        ("h", Type::U32),
        ("inv_window_bits", Type::U32),
    ]
    .iter()
    .map(|(n, t)| kb.param(n, *t))
    .collect();
    let src = kb.ld_param(&names[0], Type::U64);
    let dst = kb.ld_param(&names[1], Type::U64);
    let total = kb.ld_param(&names[2], Type::U32);
    let window = kb.ld_param(&names[3], Type::U32);
    let c = kb.ld_param(&names[4], Type::U32);
    let w = kb.ld_param(&names[5], Type::U32);
    let ow = kb.ld_param(&names[6], Type::U32);
    let kw = kb.ld_param(&names[7], Type::U32);
    let sh = kb.ld_param(&names[8], Type::U32);
    let sw = kb.ld_param(&names[9], Type::U32);
    let pad_t = kb.ld_param(&names[10], Type::U32);
    let pad_l = kb.ld_param(&names[11], Type::U32);
    let h = kb.ld_param(&names[12], Type::U32);
    let invw = kb.ld_param(&names[13], Type::U32);

    let (gid, exit) = kb.guard_gid(total);
    let ch = kb.bin_r(BinOp::Rem, Type::U32, gid, c);
    let pix = kb.bin_r(BinOp::Div, Type::U32, gid, c);
    let oy = kb.bin_r(BinOp::Div, Type::U32, pix, ow);
    let ox = kb.bin_r(BinOp::Rem, Type::U32, pix, ow);
    let iy0 = kb.bin_r(BinOp::Mul, Type::U32, oy, sh);
    let iy0 = kb.bin_r(BinOp::Sub, Type::U32, iy0, pad_t);
    let ix0 = kb.bin_r(BinOp::Mul, Type::U32, ox, sw);
    let ix0 = kb.bin_r(BinOp::Sub, Type::U32, ix0, pad_l);

    let acc = kb.f();
    if is_max {
        kb.mov(Type::F32, acc, Operand::ImmF(f32::MIN));
    } else {
        kb.mov(Type::F32, acc, Operand::ImmF(0.0));
    }
    kb.counted_loop(window, |kb, t| {
        let dy = kb.bin_r(BinOp::Div, Type::U32, t, kw);
        let dx = kb.bin_r(BinOp::Rem, Type::U32, t, kw);
        let iy = kb.bin_r(BinOp::Add, Type::U32, iy0, dy);
        let ix = kb.bin_r(BinOp::Add, Type::U32, ix0, dx);
        let py = kb.p();
        kb.setp(CmpOp::Lt, Type::U32, py, iy, h);
        let px = kb.p();
        kb.setp(CmpOp::Lt, Type::U32, px, ix, w);
        let lin = kb.r();
        kb.mad(Type::S32, lin, iy, w, ix);
        let lin2 = kb.r();
        kb.mad(Type::S32, lin2, lin, c, ch);
        let sa = elem_addr(kb, src, lin2);
        let v = kb.f();
        kb.with_guard(py, false, |kb| {
            kb.ld(Space::Global, Type::F32, v, Address::reg(sa));
        });
        let pad_val = kb.f();
        if is_max {
            kb.mov(Type::F32, pad_val, Operand::ImmF(f32::MIN));
        } else {
            kb.mov(Type::F32, pad_val, Operand::ImmF(0.0));
        }
        let vy = kb.f();
        kb.selp(Type::F32, vy, v, pad_val, py);
        let vx = kb.f();
        kb.selp(Type::F32, vx, vy, pad_val, px);
        if is_max {
            kb.bin(BinOp::Max, Type::F32, acc, acc, vx);
        } else {
            kb.bin(BinOp::Add, Type::F32, acc, acc, vx);
        }
    });
    if !is_max {
        let inv = kb.f();
        kb.cvt(Type::F32, Type::B32, inv, invw);
        kb.bin(BinOp::Mul, Type::F32, acc, acc, inv);
    }
    let da = elem_addr(&mut kb, dst, gid);
    kb.st(Space::Global, Type::F32, Address::reg(da), acc);
    kb.place_label(exit);
    kb.ret();
    kb.finish()
}

/// Global pooling: one thread per channel, strided accumulation over all
/// `hw` pixels. Params: `in, out, c, hw, inv_hw_bits`.
fn gap(is_max: bool) -> Kernel {
    let name = if is_max {
        Template::GapMax.name()
    } else {
        Template::GapAvg.name()
    };
    let mut kb = KernelBuilder::new(name, BLOCK);
    let p_in = kb.param("in", Type::U64);
    let p_out = kb.param("out", Type::U64);
    let p_c = kb.param("c", Type::U32);
    let p_hw = kb.param("hw", Type::U32);
    let p_inv = kb.param("inv_hw_bits", Type::U32);
    let src = kb.ld_param(&p_in, Type::U64);
    let dst = kb.ld_param(&p_out, Type::U64);
    let c = kb.ld_param(&p_c, Type::U32);
    let hw = kb.ld_param(&p_hw, Type::U32);
    let inv = kb.ld_param(&p_inv, Type::U32);

    let (gid, exit) = kb.guard_gid(c);
    let acc = kb.f();
    if is_max {
        kb.mov(Type::F32, acc, Operand::ImmF(f32::MIN));
    } else {
        kb.mov(Type::F32, acc, Operand::ImmF(0.0));
    }
    kb.counted_loop(hw, |kb, i| {
        // HWC layout: element (i, gid) at i*c + gid
        let idx = kb.r();
        kb.mad(Type::S32, idx, i, c, gid);
        let a = elem_addr(kb, src, idx);
        let v = kb.f();
        kb.ld(Space::Global, Type::F32, v, Address::reg(a));
        if is_max {
            kb.bin(BinOp::Max, Type::F32, acc, acc, v);
        } else {
            kb.bin(BinOp::Add, Type::F32, acc, acc, v);
        }
    });
    if !is_max {
        let fi = kb.f();
        kb.cvt(Type::F32, Type::B32, fi, inv);
        kb.bin(BinOp::Mul, Type::F32, acc, acc, fi);
    }
    let da = elem_addr(&mut kb, dst, gid);
    kb.st(Space::Global, Type::F32, Address::reg(da), acc);
    kb.place_label(exit);
    kb.ret();
    kb.finish()
}

/// Strided copy for zero padding / concat: one thread per *input* element;
/// computes the destination index from row geometry.
/// Params: `in, out, n(in elems), row_len(in row bytes worth of elems =
/// w*c), out_row_len(=out_w*c), dst_off(start offset in out)`.
fn pad_copy() -> Kernel {
    let mut kb = KernelBuilder::new(Template::PadCopy.name(), BLOCK);
    let p_in = kb.param("in", Type::U64);
    let p_out = kb.param("out", Type::U64);
    let p_n = kb.param("n", Type::U32);
    let p_row = kb.param("row_len", Type::U32);
    let p_orow = kb.param("out_row_len", Type::U32);
    let p_off = kb.param("dst_off", Type::U32);
    let src = kb.ld_param(&p_in, Type::U64);
    let dst = kb.ld_param(&p_out, Type::U64);
    let n = kb.ld_param(&p_n, Type::U32);
    let row = kb.ld_param(&p_row, Type::U32);
    let orow = kb.ld_param(&p_orow, Type::U32);
    let off = kb.ld_param(&p_off, Type::U32);

    let (gid, exit) = kb.guard_gid(n);
    let r = kb.bin_r(BinOp::Div, Type::U32, gid, row);
    let cpos = kb.bin_r(BinOp::Rem, Type::U32, gid, row);
    let obase = kb.r();
    kb.mad(Type::S32, obase, r, orow, cpos);
    let oidx = kb.bin_r(BinOp::Add, Type::U32, obase, off);
    let sa = elem_addr(&mut kb, src, gid);
    let da = elem_addr(&mut kb, dst, oidx);
    let v = kb.f();
    kb.ld(Space::Global, Type::F32, v, Address::reg(sa));
    kb.st(Space::Global, Type::F32, Address::reg(da), v);
    kb.place_label(exit);
    kb.ret();
    kb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptx::inst::Category;

    #[test]
    fn all_templates_build() {
        let kernels = build_all();
        assert_eq!(kernels.len(), Template::ALL.len());
        for (t, k) in Template::ALL.iter().zip(&kernels) {
            assert_eq!(k.name, t.name());
            assert!(k.num_instructions() > 3, "{} too small", k.name);
            // every kernel ends with ret
            let last = k.instructions().last().unwrap();
            assert!(
                matches!(last.op, ptx::inst::Op::Ret),
                "{} does not end in ret",
                k.name
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Template::ALL.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Template::ALL.len());
    }

    #[test]
    fn gemm_has_shared_memory_and_barriers() {
        let k = Template::GemmTiled.build();
        assert_eq!(k.shared_bytes, 2 * TILE * TILE * 4);
        let bars = k
            .instructions()
            .filter(|i| i.category() == Category::Sync)
            .count();
        assert_eq!(bars, 2, "two barriers per tile iteration");
        let fmas = k
            .instructions()
            .filter(|i| i.category() == Category::FloatFma)
            .count();
        assert_eq!(fmas as u32, TILE, "unrolled inner product");
    }

    #[test]
    fn branches_are_guard_and_loops_only() {
        // Every branch in every template must be either the gid guard or a
        // loop back-edge/pre-check — the property that makes the dynamic
        // code analysis exact.
        for t in Template::ALL {
            let k = t.build();
            for inst in k.instructions() {
                if let ptx::inst::Op::Bra { .. } = inst.op {
                    assert!(
                        inst.guard.is_some() || matches!(inst.op, ptx::inst::Op::Bra { .. }),
                        "{}: unguarded non-loop branch",
                        k.name
                    );
                }
            }
        }
    }

    #[test]
    fn printed_templates_reparse() {
        let mut module = ptx::Module::new("sm_61");
        module.kernels = build_all();
        let text = ptx::printer::module(&module);
        let back = ptx::parse_module(&text).expect("reparse");
        assert_eq!(back.kernels.len(), module.kernels.len());
        for (a, b) in module.kernels.iter().zip(&back.kernels) {
            assert_eq!(a.body, b.body, "kernel {} did not round-trip", a.name);
        }
    }

    #[test]
    fn elementwise_kernels_have_expected_loads() {
        let k = Template::EwAdd.build();
        let loads = k
            .instructions()
            .filter(|i| i.category() == Category::LoadGlobal)
            .count();
        assert_eq!(loads, 2);
        let k = Template::AffineCh.build();
        let loads = k
            .instructions()
            .filter(|i| i.category() == Category::LoadGlobal)
            .count();
        assert_eq!(loads, 3);
    }

    #[test]
    fn copy_is_vectorized_by_four() {
        let k = Template::CopyF32.build();
        let stores = k
            .instructions()
            .filter(|i| i.category() == Category::StoreGlobal)
            .count();
        assert_eq!(stores, 4);
    }
}

#[cfg(test)]
mod verify_tests {
    use super::*;

    /// Every generated template must pass the PTX verifier — no dangling
    /// labels, no use-before-def, valid params and guards.
    #[test]
    fn all_templates_verify() {
        for t in Template::ALL {
            let k = t.build();
            let errs = ptx::verify::verify_kernel(&k);
            assert!(errs.is_empty(), "{}: {errs:?}", k.name);
        }
    }
}
