//! # ptx-codegen — lowering CNN graphs to PTX
//!
//! The stand-in for the `nvcc`/XLA compilation step of the paper's pipeline:
//! turns a [`cnn_ir::ModelGraph`] into a [`ptx::LaunchPlan`] — a PTX module
//! of shape-generic kernels ([`templates`]) plus the ordered launch sequence
//! of one inference pass ([`lower`]).
//!
//! ```
//! let model = cnn_ir::zoo::build("mobilenet").unwrap();
//! let plan = ptx_codegen::lower(&model, "sm_61").unwrap();
//! assert!(plan.launches.len() > 50);
//! let text = ptx::printer::module(&plan.module);
//! assert!(text.contains(".target sm_61"));
//! ```

pub mod lower;
pub mod templates;

pub use lower::{lower, lower_batched, lower_with, GemmVariant};
pub use templates::{Template, BLOCK, TILE};
