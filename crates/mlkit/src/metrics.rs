//! Evaluation metrics used by the paper: MAPE, `R^2` and adjusted `R^2`,
//! plus RMSE/MAE for completeness.

/// Mean Absolute Percentage Error, in percent (the paper reports e.g.
/// "5.73%"). Rows with `|y| < eps` are skipped to avoid division blow-ups;
/// use [`mape_with_coverage`] when the caller must know how many rows the
/// reported score actually covers.
pub fn mape(y_true: &[f64], y_pred: &[f64]) -> f64 {
    mape_with_coverage(y_true, y_pred).0
}

/// [`mape`] plus its row coverage: `(mape, used, skipped)`. `skipped`
/// counts the near-zero targets excluded from the mean; a score computed
/// over a sliver of the fold can look deceptively good, so selection and
/// CV surface (and can gate on) these counts instead of silently trusting
/// the mean.
pub fn mape_with_coverage(y_true: &[f64], y_pred: &[f64]) -> (f64, usize, usize) {
    assert_eq!(y_true.len(), y_pred.len());
    let eps = 1e-12;
    let mut acc = 0.0;
    let mut n = 0usize;
    for (t, p) in y_true.iter().zip(y_pred) {
        if t.abs() > eps {
            acc += ((t - p) / t).abs();
            n += 1;
        }
    }
    let skipped = y_true.len() - n;
    if n == 0 {
        return (f64::NAN, 0, skipped);
    }
    (100.0 * acc / n as f64, n, skipped)
}

/// Coefficient of determination. Can be negative for models worse than the
/// mean predictor (as the paper's Table II shows for linear regression).
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    let n = y_true.len();
    if n == 0 {
        return f64::NAN;
    }
    let mean: f64 = y_true.iter().sum::<f64>() / n as f64;
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    let ss_tot: f64 = y_true.iter().map(|t| (t - mean) * (t - mean)).sum();
    if ss_tot < 1e-30 {
        return if ss_res < 1e-30 {
            1.0
        } else {
            f64::NEG_INFINITY
        };
    }
    1.0 - ss_res / ss_tot
}

/// Adjusted `R^2` for `p` predictors over `n` observations.
pub fn adjusted_r2(r2: f64, n: usize, p: usize) -> f64 {
    if n <= p + 1 {
        return f64::NAN;
    }
    1.0 - (1.0 - r2) * (n as f64 - 1.0) / (n as f64 - p as f64 - 1.0)
}

/// Root-mean-square error.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    let n = y_true.len().max(1) as f64;
    (y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / n)
        .sqrt()
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    let n = y_true.len().max(1) as f64;
    y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(mape(&y, &y), 0.0);
        assert_eq!(r2(&y, &y), 1.0);
        assert_eq!(rmse(&y, &y), 0.0);
        assert_eq!(mae(&y, &y), 0.0);
    }

    #[test]
    fn mape_hand_computed() {
        let t = [100.0, 200.0];
        let p = [110.0, 180.0];
        // (10% + 10%) / 2 = 10%
        assert!((mape(&t, &p) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn r2_of_mean_predictor_is_zero() {
        let t = [1.0, 2.0, 3.0, 4.0];
        let p = [2.5; 4];
        assert!(r2(&t, &p).abs() < 1e-12);
    }

    #[test]
    fn r2_can_go_negative() {
        let t = [1.0, 2.0, 3.0];
        let p = [3.0, 2.0, 1.0];
        assert!(r2(&t, &p) < 0.0);
    }

    #[test]
    fn adjusted_r2_penalizes_features() {
        let a = adjusted_r2(0.45, 20, 3);
        assert!(a < 0.45);
        // the paper: R2 0.45 -> adj 0.19 implies about 7 predictors at n=20
        let b = adjusted_r2(0.45, 20, 7);
        assert!((b - 0.129).abs() < 0.05, "{b}");
    }

    #[test]
    fn adjusted_r2_degenerate_is_nan() {
        assert!(adjusted_r2(0.9, 5, 5).is_nan());
    }

    #[test]
    fn mape_skips_zero_targets() {
        let t = [0.0, 100.0];
        let p = [5.0, 110.0];
        assert!((mape(&t, &p) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mape_coverage_reports_skipped_rows() {
        let t = [0.0, 100.0, 1e-15, 200.0];
        let p = [5.0, 110.0, 3.0, 180.0];
        let (m, used, skipped) = mape_with_coverage(&t, &p);
        assert!((m - 10.0).abs() < 1e-9);
        assert_eq!(used, 2);
        assert_eq!(skipped, 2);
        assert_eq!(m, mape(&t, &p));
    }

    #[test]
    fn mape_coverage_all_skipped_is_nan() {
        let (m, used, skipped) = mape_with_coverage(&[0.0, 0.0], &[1.0, 2.0]);
        assert!(m.is_nan());
        assert_eq!(used, 0);
        assert_eq!(skipped, 2);
    }

    #[test]
    fn r2_constant_target_with_residual_is_neg_inf() {
        // documented sentinel the selection layer must rank worst
        assert_eq!(r2(&[5.0, 5.0, 5.0], &[4.0, 5.0, 6.0]), f64::NEG_INFINITY);
    }
}
