//! Random-forest regression: bagged CART trees with per-split feature
//! subsampling, trained in parallel with rayon (deterministic per-tree
//! seeds, order-independent aggregation).

use crate::dataset::Dataset;
use crate::tree::{DecisionTreeRegressor, TreeParams};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForestParams {
    pub n_trees: usize,
    pub max_depth: usize,
    pub min_samples_leaf: usize,
    /// Features per split; `None` = all features (the scikit-learn
    /// `RandomForestRegressor` default — bagging alone provides the
    /// randomness).
    pub max_features: Option<usize>,
    pub seed: u64,
}

impl Default for ForestParams {
    /// scikit-learn defaults: 100 trees, unlimited depth, all features.
    fn default() -> Self {
        Self {
            n_trees: 100,
            max_depth: 32,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForestRegressor {
    trees: Vec<DecisionTreeRegressor>,
    pub params: ForestParams,
    n_features: usize,
}

impl RandomForestRegressor {
    pub fn fit(data: &Dataset, params: ForestParams) -> Self {
        assert!(!data.is_empty());
        let p = data.num_features();
        let mf = params.max_features.unwrap_or(p);
        let trees: Vec<DecisionTreeRegressor> = (0..params.n_trees)
            .into_par_iter()
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(t as u64 * 7919));
                // bootstrap sample
                let idx: Vec<usize> = (0..data.len())
                    .map(|_| rng.gen_range(0..data.len()))
                    .collect();
                let sample = data.select(&idx);
                DecisionTreeRegressor::fit(
                    &sample,
                    TreeParams {
                        max_depth: params.max_depth,
                        min_samples_split: 2,
                        min_samples_leaf: params.min_samples_leaf,
                        max_features: Some(mf),
                        seed: params.seed.wrapping_add(t as u64 * 104_729),
                    },
                )
            })
            .collect();
        Self {
            trees,
            params,
            n_features: p,
        }
    }

    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let s: f64 = self.trees.iter().map(|t| t.predict_row(row)).sum();
        s / self.trees.len() as f64
    }

    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        data.x.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Mean of per-tree normalized importances.
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_features];
        for t in &self.trees {
            for (a, v) in acc.iter_mut().zip(t.feature_importances()) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        acc
    }

    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_step() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..80 {
            let a = i as f64;
            let noise = ((i * 37) % 11) as f64 * 0.05;
            let y = if a < 40.0 { 1.0 + noise } else { 10.0 + noise };
            d.push(format!("r{i}"), vec![a, (i % 5) as f64], y);
        }
        d
    }

    #[test]
    fn fits_reasonably() {
        let d = noisy_step();
        let f = RandomForestRegressor::fit(&d, ForestParams::default());
        let preds = f.predict(&d);
        let r2 = crate::metrics::r2(&d.y, &preds);
        assert!(r2 > 0.9, "{r2}");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = noisy_step();
        let a = RandomForestRegressor::fit(&d, ForestParams::default());
        let b = RandomForestRegressor::fit(&d, ForestParams::default());
        assert_eq!(a.predict(&d), b.predict(&d));
        let c = RandomForestRegressor::fit(
            &d,
            ForestParams {
                seed: 9,
                ..Default::default()
            },
        );
        assert_ne!(a.predict(&d), c.predict(&d));
    }

    #[test]
    fn importances_normalized() {
        let d = noisy_step();
        let f = RandomForestRegressor::fit(&d, ForestParams::default());
        let imp = f.feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            imp[0] > imp[1],
            "informative feature should dominate: {imp:?}"
        );
    }

    #[test]
    fn respects_tree_count() {
        let d = noisy_step();
        let f = RandomForestRegressor::fit(
            &d,
            ForestParams {
                n_trees: 7,
                ..Default::default()
            },
        );
        assert_eq!(f.n_trees(), 7);
    }
}
