//! K-nearest-neighbors regression over standardized features, with uniform
//! or inverse-distance weighting.

use crate::dataset::{Dataset, Standardizer};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KnnWeights {
    Uniform,
    Distance,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnParams {
    pub k: usize,
    pub weights: KnnWeights,
}

impl Default for KnnParams {
    /// scikit-learn `KNeighborsRegressor` defaults: k = 5, uniform weights.
    fn default() -> Self {
        Self {
            k: 5,
            weights: KnnWeights::Uniform,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnRegressor {
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    scaler: Standardizer,
    pub params: KnnParams,
}

impl KnnRegressor {
    pub fn fit(data: &Dataset, params: KnnParams) -> Self {
        assert!(!data.is_empty());
        let scaler = Standardizer::fit(data);
        Self {
            x: data.x.iter().map(|r| scaler.transform_row(r)).collect(),
            y: data.y.clone(),
            scaler,
            params,
        }
    }

    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let q = self.scaler.transform_row(row);
        let mut dist: Vec<(f64, f64)> = self
            .x
            .iter()
            .zip(&self.y)
            .map(|(r, &y)| {
                let d2: f64 = r.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
                (d2.sqrt(), y)
            })
            .collect();
        let k = self.params.k.min(dist.len()).max(1);
        dist.sort_by(|a, b| a.0.total_cmp(&b.0));
        let neigh = &dist[..k];
        match self.params.weights {
            KnnWeights::Uniform => neigh.iter().map(|(_, y)| y).sum::<f64>() / k as f64,
            KnnWeights::Distance => {
                // exact hits short-circuit (infinite weight); with duplicate
                // training points at the query's coordinates, average *all*
                // coincident targets (scikit-learn parity) instead of
                // returning whichever sorted first
                let exact: Vec<f64> = neigh
                    .iter()
                    .filter(|(d, _)| *d < 1e-12)
                    .map(|(_, y)| *y)
                    .collect();
                if !exact.is_empty() {
                    return exact.iter().sum::<f64>() / exact.len() as f64;
                }
                let wsum: f64 = neigh.iter().map(|(d, _)| 1.0 / d).sum();
                neigh.iter().map(|(d, y)| y / d).sum::<f64>() / wsum
            }
        }
    }

    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        data.x.iter().map(|r| self.predict_row(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Dataset {
        let mut d = Dataset::new(vec!["a".into()]);
        for i in 0..20 {
            d.push(format!("r{i}"), vec![i as f64], (i * i) as f64);
        }
        d
    }

    #[test]
    fn exact_training_point_recovered_with_distance_weights() {
        let d = grid();
        let m = KnnRegressor::fit(
            &d,
            KnnParams {
                k: 3,
                weights: KnnWeights::Distance,
            },
        );
        assert_eq!(m.predict_row(&[5.0]), 25.0);
    }

    #[test]
    fn coincident_training_points_average_their_targets() {
        // two rows at the same coordinates with different targets: a
        // distance-weighted query at that point must average both
        // (scikit-learn parity), not return whichever happened to sort
        // first
        let mut d = Dataset::new(vec!["a".into()]);
        d.push("dup0", vec![5.0], 10.0);
        d.push("dup1", vec![5.0], 30.0);
        d.push("far", vec![100.0], 999.0);
        let m = KnnRegressor::fit(
            &d,
            KnnParams {
                k: 3,
                weights: KnnWeights::Distance,
            },
        );
        assert_eq!(m.predict_row(&[5.0]), 20.0);
    }

    #[test]
    fn uniform_weights_average_neighbors() {
        let d = grid();
        let m = KnnRegressor::fit(
            &d,
            KnnParams {
                k: 2,
                weights: KnnWeights::Uniform,
            },
        );
        // query between 4 and 5: mean of 16 and 25
        let y = m.predict_row(&[4.5]);
        assert!((y - 20.5).abs() < 1e-9, "{y}");
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let mut d = Dataset::new(vec!["a".into()]);
        d.push("r0", vec![0.0], 1.0);
        d.push("r1", vec![1.0], 3.0);
        let m = KnnRegressor::fit(
            &d,
            KnnParams {
                k: 50,
                weights: KnnWeights::Uniform,
            },
        );
        assert!((m.predict_row(&[0.5]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn interpolates_smoothly() {
        let d = grid();
        let m = KnnRegressor::fit(&d, KnnParams::default());
        let y = m.predict_row(&[7.4]);
        assert!(y > 49.0 && y < 64.0, "{y}");
    }
}
