//! Feature selection: correlation ranking and greedy forward selection.
//! The paper's related work (Metz et al., DDECS'22) shows a reduced feature
//! space can match full-feature accuracy at lower cost; this module makes
//! that experiment runnable here.

use crate::dataset::Dataset;
use crate::metrics;
use crate::model::RegressorKind;
use serde::{Deserialize, Serialize};

/// Sort `(name, score)` pairs by score descending with undefined scores
/// ranked *worst* (last). A plain `total_cmp` descending sort puts
/// positive NaN above `+inf`, so a single undefined score (zero-variance
/// fold, empty split) would silently win every ranking. `-inf` is the
/// same trap in sentinel form — `metrics::r2` returns it for a
/// constant-target fold with nonzero residual — so both NaN and `-inf`
/// sink to the end; every scorer in this module sorts through here
/// instead.
pub fn sort_scores_desc(scores: &mut [(String, f64)]) {
    let undefined = |v: f64| v.is_nan() || v == f64::NEG_INFINITY;
    scores.sort_by(|a, b| match (undefined(a.1), undefined(b.1)) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater, // undefined sinks to the end
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => b.1.total_cmp(&a.1),
    });
}

/// Absolute Pearson correlation of each feature with the target, sorted
/// descending.
pub fn correlation_ranking(data: &Dataset) -> Vec<(String, f64)> {
    let n = data.len() as f64;
    let my: f64 = data.y.iter().sum::<f64>() / n;
    let sy: f64 = data
        .y
        .iter()
        .map(|y| (y - my) * (y - my))
        .sum::<f64>()
        .sqrt();
    let mut out = Vec::with_capacity(data.num_features());
    for f in 0..data.num_features() {
        let col: Vec<f64> = data.x.iter().map(|r| r[f]).collect();
        let mx: f64 = col.iter().sum::<f64>() / n;
        let sx: f64 = col.iter().map(|x| (x - mx) * (x - mx)).sum::<f64>().sqrt();
        let cov: f64 = col
            .iter()
            .zip(&data.y)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum();
        let r = if sx > 1e-12 && sy > 1e-12 {
            (cov / (sx * sy)).abs()
        } else {
            0.0
        };
        out.push((data.feature_names[f].clone(), r));
    }
    sort_scores_desc(&mut out);
    out
}

/// Project a dataset onto a subset of features (by name).
pub fn project(data: &Dataset, features: &[&str]) -> Dataset {
    let idx: Vec<usize> = features
        .iter()
        .map(|f| {
            data.feature_index(f)
                .unwrap_or_else(|| panic!("unknown feature '{f}'"))
        })
        .collect();
    let mut out = Dataset::new(features.iter().map(|s| s.to_string()).collect());
    for i in 0..data.len() {
        let row: Vec<f64> = idx.iter().map(|&j| data.x[i][j]).collect();
        out.push(data.labels[i].clone(), row, data.y[i]);
    }
    out
}

/// Result of one greedy forward-selection step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectionStep {
    pub added: String,
    pub features: Vec<String>,
    pub mape: f64,
}

/// Greedy forward selection: repeatedly add the feature that most improves
/// hold-out MAPE for `kind`, until `max_features` or no improvement.
pub fn forward_select(
    data: &Dataset,
    kind: RegressorKind,
    max_features: usize,
    seed: u64,
) -> Vec<SelectionStep> {
    let mut chosen: Vec<String> = Vec::new();
    let mut steps = Vec::new();
    let mut best_so_far = f64::INFINITY;
    while chosen.len() < max_features.min(data.num_features()) {
        let mut best: Option<(String, f64)> = None;
        for cand in &data.feature_names {
            if chosen.contains(cand) {
                continue;
            }
            let mut trial: Vec<&str> = chosen.iter().map(|s| s.as_str()).collect();
            trial.push(cand);
            let sub = project(data, &trial);
            let (train, test) = sub.split(0.7, seed);
            let model = kind.fit(&train, seed);
            // mape() is NaN when every target in the fold is ~0, and any
            // non-finite score (NaN, or an infinity leaking out of a
            // degenerate fit) fails `<` comparisons unpredictably — once
            // stored as the incumbent it could never be *beaten*. Rank all
            // of them, and zero-coverage folds, as the worst possible
            // score instead.
            let (raw, used, _skipped) = metrics::mape_with_coverage(&test.y, &model.predict(&test));
            let mape = if !raw.is_finite() || used == 0 {
                f64::INFINITY
            } else {
                raw
            };
            if best.as_ref().map(|(_, m)| mape < *m).unwrap_or(true) {
                best = Some((cand.clone(), mape));
            }
        }
        let Some((name, mape)) = best else { break };
        if mape >= best_so_far {
            break; // no improvement
        }
        best_so_far = mape;
        chosen.push(name.clone());
        steps.push(SelectionStep {
            added: name,
            features: chosen.clone(),
            mape,
        });
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y depends on f0 strongly, f1 weakly, f2 not at all.
    fn data() -> Dataset {
        let mut d = Dataset::new(vec!["f0".into(), "f1".into(), "noise".into()]);
        for i in 0..120 {
            let a = i as f64;
            let b = ((i * 7) % 13) as f64;
            let c = ((i * 31) % 17) as f64;
            d.push(format!("r{i}"), vec![a, b, c], 3.0 * a + 0.2 * b);
        }
        d
    }

    #[test]
    fn correlation_ranks_informative_features_first() {
        let r = correlation_ranking(&data());
        assert_eq!(r[0].0, "f0");
        assert!(r[0].1 > 0.99);
        let noise = r.iter().find(|(n, _)| n == "noise").expect("present");
        assert!(noise.1 < 0.3, "noise correlation {}", noise.1);
    }

    #[test]
    fn project_keeps_rows_and_order() {
        let d = data();
        let p = project(&d, &["noise", "f0"]);
        assert_eq!(p.num_features(), 2);
        assert_eq!(p.len(), d.len());
        assert_eq!(p.x[5][1], d.x[5][0]);
        assert_eq!(p.y, d.y);
    }

    #[test]
    #[should_panic(expected = "unknown feature")]
    fn project_rejects_unknown() {
        let _ = project(&data(), &["zzz"]);
    }

    #[test]
    fn forward_selection_finds_the_signal() {
        let steps = forward_select(&data(), RegressorKind::DecisionTree, 3, 42);
        assert!(!steps.is_empty());
        assert_eq!(steps[0].added, "f0", "{steps:?}");
        // MAPE must be non-increasing across steps
        for w in steps.windows(2) {
            assert!(w[1].mape <= w[0].mape);
        }
    }

    #[test]
    fn nan_scores_sort_last_not_first() {
        let mut scores = vec![
            ("undefined".into(), f64::NAN),
            ("weak".into(), 0.1),
            ("also-undefined".into(), f64::NAN),
            ("strong".into(), 0.9),
        ];
        sort_scores_desc(&mut scores);
        assert_eq!(scores[0].0, "strong");
        assert_eq!(scores[1].0, "weak");
        assert!(scores[2].1.is_nan() && scores[3].1.is_nan(), "{scores:?}");
    }

    #[test]
    fn forward_selection_on_all_zero_targets_selects_nothing() {
        // Every hold-out MAPE is undefined (all targets ~0); the greedy
        // loop must terminate with no steps instead of latching onto a
        // NaN incumbent that nothing can beat.
        let mut d = Dataset::new(vec!["f0".into(), "f1".into()]);
        for i in 0..60 {
            d.push(format!("r{i}"), vec![i as f64, (i % 7) as f64], 0.0);
        }
        let steps = forward_select(&d, RegressorKind::DecisionTree, 2, 42);
        assert!(steps.is_empty(), "{steps:?}");
    }

    #[test]
    fn neg_inf_scores_sort_last_not_among_numbers() {
        // r2 on a constant-target fold with residual is exactly -inf;
        // it must sink below every finite score, including negative ones
        let mut scores = vec![
            (
                "constfold".into(),
                crate::metrics::r2(&[5.0, 5.0], &[4.0, 6.0]),
            ),
            ("bad-but-finite".into(), -3.0),
            ("undefined".into(), f64::NAN),
            ("good".into(), 0.8),
        ];
        sort_scores_desc(&mut scores);
        assert_eq!(scores[0].0, "good");
        assert_eq!(scores[1].0, "bad-but-finite");
        let tail: Vec<&str> = scores[2..].iter().map(|(n, _)| n.as_str()).collect();
        assert!(
            tail.contains(&"constfold") && tail.contains(&"undefined"),
            "{scores:?}"
        );
    }

    #[test]
    fn forward_selection_gates_on_zero_coverage_folds() {
        // targets are ~0 on every row: all folds have zero MAPE coverage,
        // so selection must terminate empty rather than trust a score
        // computed over no rows
        let mut d = Dataset::new(vec!["f0".into(), "f1".into()]);
        for i in 0..60 {
            d.push(format!("r{i}"), vec![i as f64, (i % 5) as f64], 1e-14);
        }
        let steps = forward_select(&d, RegressorKind::DecisionTree, 2, 7);
        assert!(steps.is_empty(), "{steps:?}");
    }

    #[test]
    fn constant_feature_has_zero_correlation() {
        let mut d = Dataset::new(vec!["const".into()]);
        for i in 0..10 {
            d.push(format!("r{i}"), vec![1.0], i as f64);
        }
        assert_eq!(correlation_ranking(&d)[0].1, 0.0);
    }
}

/// Model-agnostic permutation importance: the increase in RMSE when one
/// feature's column is shuffled (Breiman 2001). Complements the
/// impurity-based importances of the tree models; works for *any* model.
pub fn permutation_importance(
    model: &crate::model::Model,
    data: &Dataset,
    seed: u64,
) -> Vec<(String, f64)> {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let baseline = metrics::rmse(&data.y, &model.predict(data));
    let mut out = Vec::with_capacity(data.num_features());
    for f in 0..data.num_features() {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(f as u64));
        let mut perm: Vec<usize> = (0..data.len()).collect();
        perm.shuffle(&mut rng);
        let shuffled_preds: Vec<f64> = (0..data.len())
            .map(|i| {
                let mut row = data.x[i].clone();
                row[f] = data.x[perm[i]][f];
                model.predict_row(&row)
            })
            .collect();
        let degraded = metrics::rmse(&data.y, &shuffled_preds);
        out.push((data.feature_names[f].clone(), degraded - baseline));
    }
    sort_scores_desc(&mut out);
    out
}

#[cfg(test)]
mod permutation_tests {
    use super::*;
    use crate::model::RegressorKind;

    #[test]
    fn permutation_importance_finds_the_signal_feature() {
        let mut d = Dataset::new(vec!["signal".into(), "noise".into()]);
        for i in 0..150 {
            let a = i as f64;
            let b = ((i * 17) % 23) as f64;
            d.push(
                format!("r{i}"),
                vec![a, b],
                if a < 75.0 { 1.0 } else { 9.0 },
            );
        }
        let m = RegressorKind::DecisionTree.fit(&d, 0);
        let imp = permutation_importance(&m, &d, 42);
        assert_eq!(imp[0].0, "signal", "{imp:?}");
        assert!(imp[0].1 > 1.0, "shuffling the signal must hurt: {imp:?}");
        let noise = imp.iter().find(|(n, _)| n == "noise").expect("present");
        assert!(noise.1.abs() < 0.5, "noise should not matter: {imp:?}");
    }

    #[test]
    fn works_for_models_without_native_importances() {
        let mut d = Dataset::new(vec!["a".into()]);
        for i in 0..50 {
            d.push(format!("r{i}"), vec![i as f64], 2.0 * i as f64);
        }
        let m = RegressorKind::LinearRegression.fit(&d, 0);
        let imp = permutation_importance(&m, &d, 1);
        assert_eq!(imp.len(), 1);
        assert!(imp[0].1 > 0.0);
    }
}
