//! Gradient-boosted regression trees with the XGBoost second-order
//! objective (Chen & Guestrin, 2016 — the paper's fifth candidate model):
//! regularized leaf weights `w = -G/(H + lambda)`, structure-score gain
//! splits with `gamma` pruning, and shrinkage.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbtParams {
    pub n_rounds: usize,
    pub max_depth: usize,
    pub learning_rate: f64,
    /// L2 regularization on leaf weights.
    pub lambda: f64,
    /// Minimum gain to keep a split.
    pub gamma: f64,
    pub min_child_weight: f64,
}

impl Default for GbtParams {
    /// XGBoost library defaults (what the paper would have run):
    /// 100 rounds, depth 6, eta 0.3, lambda 1.
    fn default() -> Self {
        Self {
            n_rounds: 100,
            max_depth: 6,
            learning_rate: 0.3,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        weight: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct BoostTree {
    nodes: Vec<Node>,
}

impl BoostTree {
    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { weight } => return *weight,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradientBoosting {
    base_score: f64,
    trees: Vec<BoostTree>,
    pub params: GbtParams,
}

struct Builder<'a> {
    data: &'a Dataset,
    grad: &'a [f64],
    hess: &'a [f64],
    params: &'a GbtParams,
    nodes: Vec<Node>,
}

impl<'a> Builder<'a> {
    /// Structure score `G^2 / (H + lambda)`.
    fn score(&self, g: f64, h: f64) -> f64 {
        g * g / (h + self.params.lambda)
    }

    fn grow(&mut self, idx: &[usize], depth: usize) -> usize {
        let g: f64 = idx.iter().map(|&i| self.grad[i]).sum();
        let h: f64 = idx.iter().map(|&i| self.hess[i]).sum();
        let leaf_weight = -g / (h + self.params.lambda);

        if depth < self.params.max_depth && idx.len() >= 2 {
            let mut best: Option<(usize, f64, f64)> = None; // feature, thr, gain
            for f in 0..self.data.num_features() {
                let mut order: Vec<usize> = idx.to_vec();
                order.sort_by(|&a, &b| self.data.x[a][f].total_cmp(&self.data.x[b][f]));
                let mut gl = 0.0;
                let mut hl = 0.0;
                for k in 0..order.len() - 1 {
                    let i = order[k];
                    gl += self.grad[i];
                    hl += self.hess[i];
                    let hr = h - hl;
                    if hl < self.params.min_child_weight || hr < self.params.min_child_weight {
                        continue;
                    }
                    let xv = self.data.x[i][f];
                    let xn = self.data.x[order[k + 1]][f];
                    if xn <= xv {
                        continue;
                    }
                    let gr = g - gl;
                    let gain = 0.5 * (self.score(gl, hl) + self.score(gr, hr) - self.score(g, h))
                        - self.params.gamma;
                    if gain > best.map(|(_, _, bg)| bg).unwrap_or(1e-12) {
                        best = Some((f, 0.5 * (xv + xn), gain));
                    }
                }
            }
            if let Some((feature, threshold, _)) = best {
                let (li, ri): (Vec<usize>, Vec<usize>) = idx
                    .iter()
                    .partition(|&&i| self.data.x[i][feature] <= threshold);
                if !li.is_empty() && !ri.is_empty() {
                    let me = self.nodes.len();
                    self.nodes.push(Node::Leaf { weight: 0.0 });
                    let left = self.grow(&li, depth + 1);
                    let right = self.grow(&ri, depth + 1);
                    self.nodes[me] = Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    };
                    return me;
                }
            }
        }
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf {
            weight: leaf_weight,
        });
        me
    }
}

impl GradientBoosting {
    pub fn fit(data: &Dataset, params: GbtParams) -> Self {
        assert!(!data.is_empty());
        let n = data.len();
        let base_score = data.y.iter().sum::<f64>() / n as f64;
        let mut pred = vec![base_score; n];
        let mut trees = Vec::with_capacity(params.n_rounds);
        let hess = vec![1.0; n];
        for _ in 0..params.n_rounds {
            // squared loss: g = pred - y, h = 1
            let grad: Vec<f64> = pred.iter().zip(&data.y).map(|(p, y)| p - y).collect();
            let mut b = Builder {
                data,
                grad: &grad,
                hess: &hess,
                params: &params,
                nodes: Vec::new(),
            };
            let idx: Vec<usize> = (0..n).collect();
            b.grow(&idx, 0);
            let tree = BoostTree { nodes: b.nodes };
            for (p, row) in pred.iter_mut().zip(&data.x) {
                *p += params.learning_rate * tree.predict_row(row);
            }
            trees.push(tree);
        }
        Self {
            base_score,
            trees,
            params,
        }
    }

    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.base_score
            + self.params.learning_rate * self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
    }

    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        data.x.iter().map(|r| self.predict_row(r)).collect()
    }

    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave() -> Dataset {
        let mut d = Dataset::new(vec!["a".into()]);
        for i in 0..100 {
            let a = i as f64 / 10.0;
            d.push(format!("r{i}"), vec![a], a.sin() * 5.0 + a);
        }
        d
    }

    #[test]
    fn fits_nonlinear_function() {
        let d = wave();
        let m = GradientBoosting::fit(&d, GbtParams::default());
        let preds = m.predict(&d);
        let r2 = crate::metrics::r2(&d.y, &preds);
        assert!(r2 > 0.98, "{r2}");
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let d = wave();
        let few = GradientBoosting::fit(
            &d,
            GbtParams {
                n_rounds: 3,
                ..Default::default()
            },
        );
        let many = GradientBoosting::fit(
            &d,
            GbtParams {
                n_rounds: 100,
                ..Default::default()
            },
        );
        let e_few = crate::metrics::rmse(&d.y, &few.predict(&d));
        let e_many = crate::metrics::rmse(&d.y, &many.predict(&d));
        assert!(e_many < e_few, "{e_many} !< {e_few}");
    }

    #[test]
    fn lambda_shrinks_leaf_weights() {
        let d = wave();
        let loose = GradientBoosting::fit(
            &d,
            GbtParams {
                n_rounds: 1,
                lambda: 0.0,
                learning_rate: 1.0,
                ..Default::default()
            },
        );
        let tight = GradientBoosting::fit(
            &d,
            GbtParams {
                n_rounds: 1,
                lambda: 100.0,
                learning_rate: 1.0,
                ..Default::default()
            },
        );
        // with huge lambda the single tree barely moves off the base score
        let spread = |m: &GradientBoosting| {
            let p = m.predict(&d);
            p.iter().cloned().fold(f64::MIN, f64::max) - p.iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(spread(&tight) < spread(&loose) * 0.5);
    }

    #[test]
    fn gamma_prunes_splits() {
        let d = wave();
        let pruned = GradientBoosting::fit(
            &d,
            GbtParams {
                gamma: 1e9,
                ..Default::default()
            },
        );
        // every tree is a stump leaf: predictions equal base score
        let p = pruned.predict(&d);
        let base = d.y.iter().sum::<f64>() / d.len() as f64;
        assert!(p.iter().all(|v| (v - base).abs() < 1e-6));
    }
}
