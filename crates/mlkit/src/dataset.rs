//! Tabular datasets for regression: named feature columns, a target vector,
//! seeded train/test splitting (the paper's 70/30 protocol) and
//! standardization.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A dense tabular dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    pub feature_names: Vec<String>,
    /// Row-major feature matrix (`rows x features`).
    pub x: Vec<Vec<f64>>,
    pub y: Vec<f64>,
    /// Optional row labels (e.g. "resnet50@V100S") for reporting.
    pub labels: Vec<String>,
}

impl Dataset {
    pub fn new(feature_names: Vec<String>) -> Self {
        Self {
            feature_names,
            x: Vec::new(),
            y: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Append one observation.
    pub fn push(&mut self, label: impl Into<String>, features: Vec<f64>, target: f64) {
        assert_eq!(
            features.len(),
            self.feature_names.len(),
            "feature arity mismatch"
        );
        self.x.push(features);
        self.y.push(target);
        self.labels.push(label.into());
    }

    pub fn len(&self) -> usize {
        self.y.len()
    }

    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    pub fn num_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Subset by row indices.
    pub fn select(&self, idx: &[usize]) -> Dataset {
        Dataset {
            feature_names: self.feature_names.clone(),
            x: idx.iter().map(|&i| self.x[i].clone()).collect(),
            y: idx.iter().map(|&i| self.y[i]).collect(),
            labels: idx.iter().map(|&i| self.labels[i].clone()).collect(),
        }
    }

    /// Seeded shuffled split: `train_frac` of rows go to the first returned
    /// set. No row appears in both (the paper: "no data points exist in
    /// both data sets").
    pub fn split(&self, train_frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_frac));
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let n_train = (self.len() as f64 * train_frac).round() as usize;
        let (tr, te) = idx.split_at(n_train.min(self.len()));
        (self.select(tr), self.select(te))
    }

    /// Remove rows whose label satisfies `pred`, returning (kept, removed).
    pub fn partition_by_label(&self, pred: impl Fn(&str) -> bool) -> (Dataset, Dataset) {
        let mut keep = Vec::new();
        let mut out = Vec::new();
        for i in 0..self.len() {
            if pred(&self.labels[i]) {
                out.push(i);
            } else {
                keep.push(i);
            }
        }
        (self.select(&keep), self.select(&out))
    }

    /// Column index by feature name.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.feature_names.iter().position(|n| n == name)
    }

    /// Append every row of `other` (incremental growth: a journal slice
    /// of fresh measurements extends the base training set in place).
    pub fn append(&mut self, other: &Dataset) {
        assert_eq!(
            self.feature_names, other.feature_names,
            "feature layout mismatch"
        );
        self.x.extend(other.x.iter().cloned());
        self.y.extend_from_slice(&other.y);
        self.labels.extend(other.labels.iter().cloned());
    }

    /// Drop every row with a non-finite feature or target, returning how
    /// many were removed. Training on NaN/Inf rows silently poisons tree
    /// splits and least-squares solves, so retraining pipelines sanitize
    /// through this before any `fit`.
    pub fn retain_finite(&mut self) -> usize {
        let keep: Vec<usize> = (0..self.len())
            .filter(|&i| self.y[i].is_finite() && self.x[i].iter().all(|v| v.is_finite()))
            .collect();
        let removed = self.len() - keep.len();
        if removed > 0 {
            *self = self.select(&keep);
        }
        removed
    }
}

/// Per-feature standardization parameters (fit on training data only).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Standardizer {
    pub mean: Vec<f64>,
    pub std: Vec<f64>,
}

impl Standardizer {
    /// Fit on a dataset.
    pub fn fit(data: &Dataset) -> Self {
        let nf = data.num_features();
        let n = data.len().max(1) as f64;
        let mut mean = vec![0.0; nf];
        for row in &data.x {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = vec![0.0; nf];
        for row in &data.x {
            for ((s, v), m) in std.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant feature: leave centered values at 0
            }
        }
        Self { mean, std }
    }

    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    pub fn transform(&self, data: &Dataset) -> Dataset {
        Dataset {
            feature_names: data.feature_names.clone(),
            x: data.x.iter().map(|r| self.transform_row(r)).collect(),
            y: data.y.clone(),
            labels: data.labels.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..n {
            d.push(format!("row{i}"), vec![i as f64, 2.0 * i as f64], i as f64);
        }
        d
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let d = toy(100);
        let (tr, te) = d.split(0.7, 42);
        assert_eq!(tr.len(), 70);
        assert_eq!(te.len(), 30);
        let mut all: Vec<&String> = tr.labels.iter().chain(te.labels.iter()).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 100, "rows leaked between splits");
    }

    #[test]
    fn split_is_seed_deterministic() {
        let d = toy(50);
        let (a, _) = d.split(0.7, 7);
        let (b, _) = d.split(0.7, 7);
        assert_eq!(a.labels, b.labels);
        let (c, _) = d.split(0.7, 8);
        assert_ne!(a.labels, c.labels);
    }

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let d = toy(100);
        let s = Standardizer::fit(&d);
        let t = s.transform(&d);
        for f in 0..2 {
            let mean: f64 = t.x.iter().map(|r| r[f]).sum::<f64>() / t.len() as f64;
            let var: f64 = t.x.iter().map(|r| r[f] * r[f]).sum::<f64>() / t.len() as f64;
            assert!(mean.abs() < 1e-9, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "var {var}");
        }
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let mut d = Dataset::new(vec!["c".into()]);
        for i in 0..10 {
            d.push(format!("r{i}"), vec![5.0], i as f64);
        }
        let s = Standardizer::fit(&d);
        let t = s.transform(&d);
        assert!(t.x.iter().all(|r| r[0] == 0.0));
    }

    #[test]
    fn partition_by_label() {
        let d = toy(10);
        let (keep, out) = d.partition_by_label(|l| l.ends_with('3'));
        assert_eq!(out.len(), 1);
        assert_eq!(keep.len(), 9);
    }

    #[test]
    fn append_extends_in_place() {
        let mut a = toy(3);
        let b = toy(2);
        a.append(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.labels[3], "row0");
        assert_eq!(a.y[4], 1.0);
    }

    #[test]
    #[should_panic(expected = "feature layout mismatch")]
    fn append_rejects_mismatched_layout() {
        let mut a = toy(1);
        let b = Dataset::new(vec!["other".into()]);
        a.append(&b);
    }

    #[test]
    fn retain_finite_drops_poisoned_rows() {
        let mut d = toy(4);
        d.push("nan-y", vec![1.0, 1.0], f64::NAN);
        d.push("inf-x", vec![f64::INFINITY, 1.0], 2.0);
        d.push("ok", vec![3.0, 3.0], 3.0);
        let removed = d.retain_finite();
        assert_eq!(removed, 2);
        assert_eq!(d.len(), 5);
        assert!(d.y.iter().all(|v| v.is_finite()));
        assert!(d.x.iter().flatten().all(|v| v.is_finite()));
        assert!(!d.labels.contains(&"nan-y".to_string()));
        // clean data is untouched (no reallocation shuffle)
        assert_eq!(d.retain_finite(), 0);
    }

    #[test]
    #[should_panic(expected = "feature arity")]
    fn arity_checked() {
        let mut d = Dataset::new(vec!["a".into()]);
        d.push("r", vec![1.0, 2.0], 0.0);
    }
}

impl Dataset {
    /// Serialize to CSV: `label, <features...>, target`.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("label,");
        s.push_str(&self.feature_names.join(","));
        s.push_str(",target\n");
        for i in 0..self.len() {
            s.push_str(&self.labels[i]);
            for v in &self.x[i] {
                s.push(',');
                s.push_str(&format!("{v}"));
            }
            s.push_str(&format!(",{}\n", self.y[i]));
        }
        s
    }

    /// Parse the CSV produced by [`Self::to_csv`].
    pub fn from_csv(text: &str) -> Result<Dataset, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty csv")?;
        let cols: Vec<&str> = header.split(',').collect();
        if cols.len() < 3 || cols[0] != "label" || *cols.last().expect("cols") != "target" {
            return Err("expected header 'label,<features...>,target'".into());
        }
        let feature_names: Vec<String> = cols[1..cols.len() - 1]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut d = Dataset::new(feature_names);
        for (ln, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split(',').collect();
            if parts.len() != cols.len() {
                return Err(format!(
                    "row {} has {} columns, expected {}",
                    ln + 2,
                    parts.len(),
                    cols.len()
                ));
            }
            let features: Result<Vec<f64>, _> = parts[1..parts.len() - 1]
                .iter()
                .map(|v| v.parse::<f64>())
                .collect();
            let features = features.map_err(|e| format!("row {}: {e}", ln + 2))?;
            let target: f64 = parts[parts.len() - 1]
                .parse()
                .map_err(|e| format!("row {}: {e}", ln + 2))?;
            d.push(parts[0].to_string(), features, target);
        }
        Ok(d)
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        d.push("x@y", vec![1.5, -2.0], 0.75);
        d.push("z@w", vec![1e9, 0.0], 0.5);
        let back = Dataset::from_csv(&d.to_csv()).unwrap();
        assert_eq!(back.feature_names, d.feature_names);
        assert_eq!(back.labels, d.labels);
        assert_eq!(back.x, d.x);
        assert_eq!(back.y, d.y);
    }

    #[test]
    fn csv_rejects_bad_header() {
        assert!(Dataset::from_csv("a,b,c\n1,2,3\n").is_err());
    }

    #[test]
    fn csv_rejects_ragged_rows() {
        let text = "label,a,target\nx,1,2\ny,3\n";
        assert!(Dataset::from_csv(text).is_err());
    }
}
