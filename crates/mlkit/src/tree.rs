//! CART regression tree with variance-reduction splits and impurity-based
//! feature importances (the paper selects Decision Tree regression as its
//! final predictive model and reports importances in Table III).

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Tree hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeParams {
    pub max_depth: usize,
    pub min_samples_split: usize,
    pub min_samples_leaf: usize,
    /// Features considered per split; `None` = all (plain CART), `Some(m)`
    /// = random subset of `m` (random-forest mode).
    pub max_features: Option<usize>,
    /// RNG seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 8,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTreeRegressor {
    nodes: Vec<Node>,
    /// Un-normalized total impurity decrease per feature.
    importance_raw: Vec<f64>,
    pub params: TreeParams,
}

/// Best split of `idx` on `feature`: returns (threshold, sse_decrease,
/// left_count) or None.
fn best_split_on(
    data: &Dataset,
    idx: &[usize],
    feature: usize,
    min_leaf: usize,
) -> Option<(f64, f64)> {
    let mut order: Vec<usize> = idx.to_vec();
    order.sort_by(|&a, &b| data.x[a][feature].total_cmp(&data.x[b][feature]));
    let n = order.len();
    let total_sum: f64 = order.iter().map(|&i| data.y[i]).sum();
    let total_sq: f64 = order.iter().map(|&i| data.y[i] * data.y[i]).sum();
    let sse_parent = total_sq - total_sum * total_sum / n as f64;

    let mut left_sum = 0.0;
    let mut left_sq = 0.0;
    let mut best: Option<(f64, f64)> = None;
    for k in 0..n - 1 {
        let i = order[k];
        left_sum += data.y[i];
        left_sq += data.y[i] * data.y[i];
        let nl = k + 1;
        let nr = n - nl;
        if nl < min_leaf || nr < min_leaf {
            continue;
        }
        let xv = data.x[i][feature];
        let xnext = data.x[order[k + 1]][feature];
        if xnext <= xv {
            continue; // can't split between equal values
        }
        let right_sum = total_sum - left_sum;
        let right_sq = total_sq - left_sq;
        let sse_l = left_sq - left_sum * left_sum / nl as f64;
        let sse_r = right_sq - right_sum * right_sum / nr as f64;
        let dec = sse_parent - sse_l - sse_r;
        let threshold = 0.5 * (xv + xnext);
        if best.map(|(_, d)| dec > d).unwrap_or(dec > 1e-12) {
            best = Some((threshold, dec));
        }
    }
    best
}

impl DecisionTreeRegressor {
    pub fn fit(data: &Dataset, params: TreeParams) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let mut tree = Self {
            nodes: Vec::new(),
            importance_raw: vec![0.0; data.num_features()],
            params: params.clone(),
        };
        let idx: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(params.seed);
        tree.grow(data, &idx, 0, &mut rng);
        tree
    }

    fn grow(&mut self, data: &Dataset, idx: &[usize], depth: usize, rng: &mut StdRng) -> usize {
        let mean = idx.iter().map(|&i| data.y[i]).sum::<f64>() / idx.len() as f64;
        let stop = depth >= self.params.max_depth
            || idx.len() < self.params.min_samples_split
            || idx.len() < 2 * self.params.min_samples_leaf;
        if !stop {
            // candidate features (optionally subsampled)
            let nf = data.num_features();
            let feats: Vec<usize> = match self.params.max_features {
                Some(m) if m < nf => {
                    let mut all: Vec<usize> = (0..nf).collect();
                    all.shuffle(rng);
                    all.truncate(m.max(1));
                    all
                }
                _ => (0..nf).collect(),
            };
            let mut best: Option<(usize, f64, f64)> = None;
            for f in feats {
                if let Some((thr, dec)) = best_split_on(data, idx, f, self.params.min_samples_leaf)
                {
                    if best.map(|(_, _, d)| dec > d).unwrap_or(true) {
                        best = Some((f, thr, dec));
                    }
                }
            }
            if let Some((feature, threshold, dec)) = best {
                let (li, ri): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| data.x[i][feature] <= threshold);
                if !li.is_empty() && !ri.is_empty() {
                    self.importance_raw[feature] += dec;
                    let me = self.nodes.len();
                    self.nodes.push(Node::Leaf { value: mean }); // placeholder
                    let left = self.grow(data, &li, depth + 1, rng);
                    let right = self.grow(data, &ri, depth + 1, rng);
                    self.nodes[me] = Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    };
                    return me;
                }
            }
        }
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean });
        me
    }

    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        data.x.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Normalized impurity-decrease feature importances, summing to 1 (the
    /// paper's Table III "Importance" column).
    pub fn feature_importances(&self) -> Vec<f64> {
        let total: f64 = self.importance_raw.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.importance_raw.len()];
        }
        self.importance_raw.iter().map(|v| v / total).collect()
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "noise".into()]);
        for i in 0..60 {
            let a = i as f64;
            let y = if a < 30.0 { 1.0 } else { 10.0 };
            d.push(format!("r{i}"), vec![a, (i % 7) as f64], y);
        }
        d
    }

    #[test]
    fn fits_step_function_exactly() {
        let d = step_data();
        let t = DecisionTreeRegressor::fit(&d, TreeParams::default());
        let preds = t.predict(&d);
        assert!(crate::metrics::rmse(&d.y, &preds) < 1e-9);
    }

    #[test]
    fn importance_identifies_informative_feature() {
        let d = step_data();
        let t = DecisionTreeRegressor::fit(&d, TreeParams::default());
        let imp = t.feature_importances();
        assert!(imp[0] > 0.95, "{imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn max_depth_limits_tree() {
        let d = step_data();
        let t = DecisionTreeRegressor::fit(
            &d,
            TreeParams {
                max_depth: 1,
                ..Default::default()
            },
        );
        assert!(t.depth() <= 1);
        assert!(t.num_nodes() <= 3);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let d = step_data();
        let t = DecisionTreeRegressor::fit(
            &d,
            TreeParams {
                min_samples_leaf: 25,
                ..Default::default()
            },
        );
        // with 60 rows and min leaf 25 only the 30/30 step split survives
        assert!(t.depth() <= 2, "depth {}", t.depth());
    }

    #[test]
    fn single_row_gives_constant_leaf() {
        let mut d = Dataset::new(vec!["a".into()]);
        d.push("only", vec![1.0], 42.0);
        let t = DecisionTreeRegressor::fit(&d, TreeParams::default());
        assert_eq!(t.predict_row(&[123.0]), 42.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = step_data();
        let p = TreeParams {
            max_features: Some(1),
            seed: 5,
            ..Default::default()
        };
        let a = DecisionTreeRegressor::fit(&d, p.clone());
        let b = DecisionTreeRegressor::fit(&d, p);
        assert_eq!(a.predict(&d), b.predict(&d));
    }
}
