//! # mlkit — from-scratch regression algorithms and metrics
//!
//! The machine-learning substrate of the reproduction: the five regression
//! algorithms the paper compares in Table II — [`linreg`] (Linear
//! Regression), [`knn`] (K-Nearest Neighbors), [`forest`] (Random Forest),
//! [`tree`] (Decision Tree, the paper's final model) and [`gbt`]
//! (XGBoost-style gradient boosting) — plus the paper's evaluation metrics
//! (MAPE, R², adjusted R², [`metrics`]), impurity-based feature importances
//! (Table III), seeded dataset splitting ([`dataset`]) and repeated-split /
//! k-fold evaluation ([`cv`]).
//!
//! Everything is deterministic given explicit seeds, serde-serializable,
//! and random-forest training parallelizes with rayon.

pub mod cv;
pub mod dataset;
pub mod forest;
pub mod gbt;
pub mod knn;
pub mod linreg;
pub mod metrics;
pub mod model;
pub mod select;
pub mod tree;

pub use cv::{kfold_eval, repeated_split_eval, MeanStd, RepeatedScores};
pub use dataset::{Dataset, Standardizer};
pub use forest::{ForestParams, RandomForestRegressor};
pub use gbt::{GbtParams, GradientBoosting};
pub use knn::{KnnParams, KnnRegressor, KnnWeights};
pub use linreg::LinearRegression;
pub use model::{evaluate, Model, RegressorKind, Scores};
pub use select::{
    correlation_ranking, forward_select, permutation_importance, project, SelectionStep,
};
pub use tree::{DecisionTreeRegressor, TreeParams};
