//! Ordinary least squares with an intercept, solved by Gaussian elimination
//! over the normal equations with a small ridge term for numerical
//! stability. Features are standardized internally.

use crate::dataset::{Dataset, Standardizer};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearRegression {
    pub coefficients: Vec<f64>,
    pub intercept: f64,
    scaler: Standardizer,
}

/// Solve `A x = b` in place via Gaussian elimination with partial pivoting.
/// Returns `None` for (numerically) singular systems.
pub(crate) fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // pivot
        let (piv, mx) = (col..n)
            .map(|r| (r, a[r][col].abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))?;
        if mx < 1e-12 {
            return None;
        }
        a.swap(col, piv);
        b.swap(col, piv);
        // eliminate
        let (pivot_rows, rest) = a.split_at_mut(col + 1);
        let pivot = &pivot_rows[col];
        for (off, row) in rest.iter_mut().enumerate() {
            let f = row[col] / pivot[col];
            if f == 0.0 {
                continue;
            }
            for (x, &p) in row[col..].iter_mut().zip(&pivot[col..]) {
                *x -= f * p;
            }
            b[col + 1 + off] -= f * b[col];
        }
    }
    // back substitution
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = b[r];
        for c in r + 1..n {
            acc -= a[r][c] * x[c];
        }
        x[r] = acc / a[r][r];
    }
    Some(x)
}

impl LinearRegression {
    /// Fit by OLS (ridge fallback `1e-8` on the diagonal).
    pub fn fit(data: &Dataset) -> Self {
        let scaler = Standardizer::fit(data);
        let xs: Vec<Vec<f64>> = data.x.iter().map(|r| scaler.transform_row(r)).collect();
        let n = data.len();
        let p = data.num_features();
        // design matrix with intercept column appended
        let d = p + 1;
        let mut xtx = vec![vec![0.0; d]; d];
        let mut xty = vec![0.0; d];
        for (row, &y) in xs.iter().zip(&data.y) {
            for i in 0..d {
                let xi = if i < p { row[i] } else { 1.0 };
                xty[i] += xi * y;
                for j in 0..d {
                    let xj = if j < p { row[j] } else { 1.0 };
                    xtx[i][j] += xi * xj;
                }
            }
        }
        let ridge = 1e-8 * n.max(1) as f64;
        for (i, r) in xtx.iter_mut().enumerate().take(p) {
            r[i] += ridge;
        }
        let w = solve(xtx, xty).unwrap_or_else(|| vec![0.0; d]);
        Self {
            coefficients: w[..p].to_vec(),
            intercept: w[p],
            scaler,
        }
    }

    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let xs = self.scaler.transform_row(row);
        self.intercept
            + xs.iter()
                .zip(&self.coefficients)
                .map(|(x, c)| x * c)
                .sum::<f64>()
    }

    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        data.x.iter().map(|r| self.predict_row(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> Dataset {
        // y = 3a - 2b + 5
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..n {
            let a = i as f64;
            let b = (i * 7 % 13) as f64;
            d.push(format!("r{i}"), vec![a, b], 3.0 * a - 2.0 * b + 5.0);
        }
        d
    }

    #[test]
    fn recovers_linear_relationship() {
        let d = linear_data(50);
        let m = LinearRegression::fit(&d);
        let preds = m.predict(&d);
        let err = crate::metrics::rmse(&d.y, &preds);
        assert!(err < 1e-6, "rmse {err}");
    }

    #[test]
    fn extrapolates_linearly() {
        let d = linear_data(50);
        let m = LinearRegression::fit(&d);
        let y = m.predict_row(&[100.0, 0.0]);
        assert!((y - 305.0).abs() < 1e-4, "{y}");
    }

    #[test]
    fn solver_rejects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn solver_solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn nonlinear_target_fits_poorly() {
        // step function: linear regression cannot capture it
        let mut d = Dataset::new(vec!["a".into()]);
        for i in 0..40 {
            let a = i as f64;
            let y = if a < 20.0 { 1.0 } else { 10.0 };
            d.push(format!("r{i}"), vec![a], y);
        }
        let m = LinearRegression::fit(&d);
        let preds = m.predict(&d);
        let r2 = crate::metrics::r2(&d.y, &preds);
        assert!(r2 < 0.95, "step function fit too well: {r2}");
    }
}
