//! A unified interface over the five regression algorithms the paper
//! evaluates (Table II), with serde-serializable trained models.

use crate::dataset::Dataset;
use crate::forest::{ForestParams, RandomForestRegressor};
use crate::gbt::{GbtParams, GradientBoosting};
use crate::knn::{KnnParams, KnnRegressor};
use crate::linreg::LinearRegression;
use crate::metrics;
use crate::tree::{DecisionTreeRegressor, TreeParams};
use serde::{Deserialize, Serialize};

/// The five candidate algorithms of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegressorKind {
    LinearRegression,
    KNearestNeighbors,
    RandomForest,
    DecisionTree,
    XgBoost,
}

impl RegressorKind {
    pub const ALL: [RegressorKind; 5] = [
        RegressorKind::LinearRegression,
        RegressorKind::KNearestNeighbors,
        RegressorKind::RandomForest,
        RegressorKind::DecisionTree,
        RegressorKind::XgBoost,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            RegressorKind::LinearRegression => "Linear Regression",
            RegressorKind::KNearestNeighbors => "K-Nearest Neighbors",
            RegressorKind::RandomForest => "Random Forest Tree",
            RegressorKind::DecisionTree => "Decision Tree",
            RegressorKind::XgBoost => "XG Boost",
        }
    }

    /// Train with the library defaults (tuned for the paper's small
    /// tabular datasets). `seed` feeds the stochastic models.
    pub fn fit(&self, data: &Dataset, seed: u64) -> Model {
        match self {
            RegressorKind::LinearRegression => Model::Linear(LinearRegression::fit(data)),
            RegressorKind::KNearestNeighbors => {
                Model::Knn(KnnRegressor::fit(data, KnnParams::default()))
            }
            RegressorKind::RandomForest => Model::Forest(RandomForestRegressor::fit(
                data,
                ForestParams {
                    seed,
                    ..Default::default()
                },
            )),
            RegressorKind::DecisionTree => Model::Tree(DecisionTreeRegressor::fit(
                data,
                TreeParams {
                    // selected by repeated-split validation on the paper
                    // corpus (the paper likewise tunes its final tree)
                    max_depth: 6,
                    min_samples_leaf: 2,
                    seed,
                    ..Default::default()
                },
            )),
            RegressorKind::XgBoost => Model::Gbt(GradientBoosting::fit(data, GbtParams::default())),
        }
    }
}

/// A trained model of any kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Model {
    Linear(LinearRegression),
    Knn(KnnRegressor),
    Tree(DecisionTreeRegressor),
    Forest(RandomForestRegressor),
    Gbt(GradientBoosting),
}

impl Model {
    pub fn kind(&self) -> RegressorKind {
        match self {
            Model::Linear(_) => RegressorKind::LinearRegression,
            Model::Knn(_) => RegressorKind::KNearestNeighbors,
            Model::Tree(_) => RegressorKind::DecisionTree,
            Model::Forest(_) => RegressorKind::RandomForest,
            Model::Gbt(_) => RegressorKind::XgBoost,
        }
    }

    pub fn predict_row(&self, row: &[f64]) -> f64 {
        match self {
            Model::Linear(m) => m.predict_row(row),
            Model::Knn(m) => m.predict_row(row),
            Model::Tree(m) => m.predict_row(row),
            Model::Forest(m) => m.predict_row(row),
            Model::Gbt(m) => m.predict_row(row),
        }
    }

    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        data.x.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Impurity-based feature importances where the model supports them.
    pub fn feature_importances(&self) -> Option<Vec<f64>> {
        match self {
            Model::Tree(m) => Some(m.feature_importances()),
            Model::Forest(m) => Some(m.feature_importances()),
            _ => None,
        }
    }
}

/// Evaluation scores of one model on one hold-out set (a Table II row).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scores {
    pub mape: f64,
    /// Hold-out rows the MAPE actually covers (near-zero targets are
    /// excluded from the mean; a low `mape_rows_used` means the headline
    /// number describes a sliver of the fold).
    pub mape_rows_used: usize,
    /// Hold-out rows skipped by the MAPE for near-zero targets.
    pub mape_rows_skipped: usize,
    pub r2: f64,
    pub adjusted_r2: f64,
    pub rmse: f64,
}

/// Score `model` on `test`.
pub fn evaluate(model: &Model, test: &Dataset) -> Scores {
    let preds = model.predict(test);
    let r2 = metrics::r2(&test.y, &preds);
    let (mape, mape_rows_used, mape_rows_skipped) = metrics::mape_with_coverage(&test.y, &preds);
    Scores {
        mape,
        mape_rows_used,
        mape_rows_skipped,
        r2,
        adjusted_r2: metrics::adjusted_r2(r2, test.len(), test.num_features()),
        rmse: metrics::rmse(&test.y, &preds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..120 {
            let a = i as f64;
            let b = ((i * 13) % 17) as f64;
            // piecewise non-linear target
            let y = if a < 60.0 {
                a * 0.1 + b
            } else {
                30.0 - b * 0.5
            };
            d.push(format!("r{i}"), vec![a, b], y);
        }
        d
    }

    #[test]
    fn all_five_kinds_train_and_predict() {
        let d = data();
        let (tr, te) = d.split(0.7, 1);
        for kind in RegressorKind::ALL {
            let m = kind.fit(&tr, 42);
            assert_eq!(m.kind(), kind);
            let s = evaluate(&m, &te);
            assert!(s.mape.is_finite(), "{}: MAPE not finite", kind.name());
            assert!(s.rmse.is_finite());
        }
    }

    #[test]
    fn trees_beat_linear_on_piecewise_target() {
        let d = data();
        let (tr, te) = d.split(0.7, 3);
        let lin = evaluate(&RegressorKind::LinearRegression.fit(&tr, 0), &te);
        let tree = evaluate(&RegressorKind::DecisionTree.fit(&tr, 0), &te);
        assert!(
            tree.rmse < lin.rmse,
            "tree {} !< linear {}",
            tree.rmse,
            lin.rmse
        );
    }

    #[test]
    fn importances_only_for_tree_models() {
        let d = data();
        assert!(RegressorKind::DecisionTree
            .fit(&d, 0)
            .feature_importances()
            .is_some());
        assert!(RegressorKind::RandomForest
            .fit(&d, 0)
            .feature_importances()
            .is_some());
        assert!(RegressorKind::LinearRegression
            .fit(&d, 0)
            .feature_importances()
            .is_none());
    }

    #[test]
    fn models_serialize_roundtrip() {
        let d = data();
        for kind in RegressorKind::ALL {
            let m = kind.fit(&d, 7);
            let json = serde_json::to_string(&m).unwrap();
            let back: Model = serde_json::from_str(&json).unwrap();
            let row = &d.x[5];
            assert_eq!(
                m.predict_row(row),
                back.predict_row(row),
                "{} did not roundtrip",
                kind.name()
            );
        }
    }

    #[test]
    fn paper_names() {
        assert_eq!(RegressorKind::XgBoost.name(), "XG Boost");
        assert_eq!(RegressorKind::RandomForest.name(), "Random Forest Tree");
    }
}
