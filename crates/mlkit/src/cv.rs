//! Model-selection utilities: k-fold cross-validation and repeated
//! train/test evaluation (used to quantify the variance hidden behind the
//! paper's single 70/30 split).

use crate::dataset::Dataset;
use crate::model::{evaluate, RegressorKind, Scores};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Mean and standard deviation of a metric over repetitions.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MeanStd {
    pub mean: f64,
    pub std: f64,
}

fn mean_std(vals: &[f64]) -> MeanStd {
    let finite: Vec<f64> = vals.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        // no finite values: report NaN rather than a fake 0.0 score
        return MeanStd {
            mean: f64::NAN,
            std: f64::NAN,
        };
    }
    let n = finite.len() as f64;
    let mean = finite.iter().sum::<f64>() / n;
    let var = finite.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    MeanStd {
        mean,
        std: var.sqrt(),
    }
}

/// Aggregated scores over repeated splits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepeatedScores {
    pub kind: RegressorKind,
    pub mape: MeanStd,
    pub r2: MeanStd,
    pub adjusted_r2: MeanStd,
    pub runs: usize,
}

/// Repeat the paper's 70/30 protocol across `seeds`, returning per-seed
/// scores and the aggregate.
pub fn repeated_split_eval(
    data: &Dataset,
    kind: RegressorKind,
    train_frac: f64,
    seeds: &[u64],
) -> (Vec<Scores>, RepeatedScores) {
    let per: Vec<Scores> = seeds
        .iter()
        .map(|&s| {
            let (tr, te) = data.split(train_frac, s);
            let m = kind.fit(&tr, s);
            evaluate(&m, &te)
        })
        .collect();
    let agg = RepeatedScores {
        kind,
        mape: mean_std(&per.iter().map(|s| s.mape).collect::<Vec<_>>()),
        r2: mean_std(&per.iter().map(|s| s.r2).collect::<Vec<_>>()),
        adjusted_r2: mean_std(&per.iter().map(|s| s.adjusted_r2).collect::<Vec<_>>()),
        runs: per.len(),
    };
    (per, agg)
}

/// K-fold cross-validation: returns the per-fold scores.
pub fn kfold_eval(data: &Dataset, kind: RegressorKind, k: usize, seed: u64) -> Vec<Scores> {
    assert!(k >= 2, "need at least two folds");
    let mut idx: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let fold_size = data.len().div_ceil(k);
    let mut out = Vec::with_capacity(k);
    for f in 0..k {
        let lo = f * fold_size;
        let hi = ((f + 1) * fold_size).min(data.len());
        if lo >= hi {
            break;
        }
        let test_idx: Vec<usize> = idx[lo..hi].to_vec();
        let train_idx: Vec<usize> = idx[..lo].iter().chain(&idx[hi..]).copied().collect();
        let train = data.select(&train_idx);
        let test = data.select(&test_idx);
        let m = kind.fit(&train, seed.wrapping_add(f as u64));
        out.push(evaluate(&m, &test));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let mut d = Dataset::new(vec!["a".into()]);
        for i in 0..100 {
            let a = i as f64;
            d.push(format!("r{i}"), vec![a], 2.0 * a + 1.0);
        }
        d
    }

    #[test]
    fn repeated_eval_aggregates() {
        let d = data();
        let (per, agg) =
            repeated_split_eval(&d, RegressorKind::LinearRegression, 0.7, &[1, 2, 3, 4, 5]);
        assert_eq!(per.len(), 5);
        assert_eq!(agg.runs, 5);
        assert!(agg.mape.mean < 1.0, "linear fit should be near perfect");
    }

    #[test]
    fn kfold_covers_all_rows() {
        let d = data();
        let scores = kfold_eval(&d, RegressorKind::DecisionTree, 5, 3);
        assert_eq!(scores.len(), 5);
        for s in scores {
            assert!(s.mape.is_finite());
        }
    }

    #[test]
    fn mean_std_ignores_nan() {
        let ms = mean_std(&[1.0, f64::NAN, 3.0]);
        assert_eq!(ms.mean, 2.0);
    }

    #[test]
    fn mean_std_of_all_nan_is_nan_not_zero() {
        // an all-NaN metric vector must not masquerade as a perfect 0.0
        let ms = mean_std(&[f64::NAN, f64::NAN, f64::INFINITY]);
        assert!(ms.mean.is_nan());
        assert!(ms.std.is_nan());
        let empty = mean_std(&[]);
        assert!(empty.mean.is_nan());
        assert!(empty.std.is_nan());
    }

    #[test]
    #[should_panic(expected = "two folds")]
    fn kfold_requires_k2() {
        let d = data();
        let _ = kfold_eval(&d, RegressorKind::DecisionTree, 1, 0);
    }
}
