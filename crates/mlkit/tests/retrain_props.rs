//! Property tests for the retrain data path: appending a measurement
//! journal full of NaN/Inf/outlier rows onto a clean base dataset and
//! refitting must **never** produce a NaN-scoring predictor, for any
//! regressor family — the guarantee the serve daemon's lifecycle trainer
//! leans on when it retrains from served ground truth.

use mlkit::metrics::mape;
use mlkit::{Dataset, RegressorKind};
use proptest::prelude::*;

const NF: usize = 4;

fn names() -> Vec<String> {
    (0..NF).map(|i| format!("f{i}")).collect()
}

/// A clean, learnable base: y is a linear function of the features.
fn base_dataset(rows: usize) -> Dataset {
    let mut d = Dataset::new(names());
    for i in 0..rows {
        let row: Vec<f64> = (0..NF).map(|j| ((i * 5 + j * 3) % 17) as f64).collect();
        let y = 1.0 + 2.0 * row[0] + 0.5 * row[1];
        d.push(format!("b{i}"), row, y);
    }
    d
}

/// One journal row: possibly poisoned with a non-finite feature, a
/// non-finite target, or a wild-but-finite outlier target.
#[derive(Debug, Clone)]
struct JournalRow {
    row: Vec<f64>,
    y: f64,
}

fn journal_row() -> impl Strategy<Value = JournalRow> {
    (
        proptest::collection::vec(0u32..1000, NF..NF + 1),
        0u32..4,    // poison selector
        0usize..NF, // poisoned feature index
        prop_oneof![Just(f64::NAN), Just(f64::INFINITY), Just(f64::NEG_INFINITY)],
        1u32..1_000_000, // outlier magnitude
    )
        .prop_map(|(raw, poison, idx, bad, mag)| {
            let mut row: Vec<f64> = raw.iter().map(|v| *v as f64 / 10.0).collect();
            let mut y = 1.0 + 2.0 * row[0] + 0.5 * row[1];
            match poison {
                0 => row[idx] = bad,       // non-finite feature
                1 => y = bad,              // non-finite target
                2 => y = mag as f64 * 1e6, // absurd-but-finite outlier
                _ => {}                    // clean row
            }
            JournalRow { row, y }
        })
}

proptest! {
    /// base + journal(with NaN/Inf/outliers) → retain_finite → fit:
    /// every family predicts finite values on finite probes and scores a
    /// finite (non-NaN) MAPE. The non-finite rows must be gone; finite
    /// rows (outliers included) must all survive the filter.
    #[test]
    fn poisoned_journal_never_yields_nan_scoring_predictor(
        journal_rows in proptest::collection::vec(journal_row(), 1..24),
        seed in 0u64..64,
    ) {
        let base = base_dataset(24);
        let mut journal = Dataset::new(names());
        for (i, r) in journal_rows.iter().enumerate() {
            journal.push(format!("j{i}"), r.row.clone(), r.y);
        }

        let mut train = base.clone();
        train.append(&journal);
        let dropped = train.retain_finite();

        let poisoned = journal_rows
            .iter()
            .filter(|r| !r.y.is_finite() || r.row.iter().any(|v| !v.is_finite()))
            .count();
        prop_assert_eq!(dropped, poisoned, "retain_finite drops exactly the non-finite rows");
        prop_assert!(train.len() >= base.len(), "the clean base always survives");
        prop_assert!(
            train.y.iter().all(|v| v.is_finite())
                && train.x.iter().flatten().all(|v| v.is_finite())
        );

        let shadow = base_dataset(8);
        for kind in [
            RegressorKind::DecisionTree,
            RegressorKind::KNearestNeighbors,
            RegressorKind::RandomForest,
            RegressorKind::XgBoost,
            RegressorKind::LinearRegression,
        ] {
            let model = kind.fit(&train, seed);
            let pred: Vec<f64> = shadow.x.iter().map(|r| model.predict_row(r)).collect();
            prop_assert!(
                pred.iter().all(|p| p.is_finite()),
                "{:?} produced a non-finite prediction from sanitized data", kind
            );
            let score = mape(&shadow.y, &pred);
            prop_assert!(
                score.is_finite(),
                "{:?} shadow MAPE must be finite, got {score}", kind
            );
        }
    }

    /// Append is exact concatenation: lengths add up, and the appended
    /// tail is bit-identical to the source journal.
    #[test]
    fn append_preserves_rows_bit_exactly(
        journal_rows in proptest::collection::vec(journal_row(), 0..16),
    ) {
        let base = base_dataset(6);
        let mut journal = Dataset::new(names());
        for (i, r) in journal_rows.iter().enumerate() {
            journal.push(format!("j{i}"), r.row.clone(), r.y);
        }
        let mut joined = base.clone();
        joined.append(&journal);
        prop_assert_eq!(joined.len(), base.len() + journal.len());
        for (i, r) in journal_rows.iter().enumerate() {
            let at = base.len() + i;
            // bitwise compare: rows may legitimately carry NaN, and
            // NaN != NaN under float equality
            prop_assert_eq!(joined.x[at].len(), r.row.len());
            for (a, b) in joined.x[at].iter().zip(&r.row) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert_eq!(joined.y[at].to_bits(), r.y.to_bits());
        }
    }
}
