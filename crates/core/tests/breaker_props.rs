//! Property tests for the circuit-breaker state machine behind the
//! resilient estimation engine. Three liveness/determinism guarantees:
//!
//! 1. A breaker is **never stuck open**: from any reachable open state,
//!    admission at `opened_at + cooldown_ticks` starts a half-open probe.
//! 2. Half-open admits **exactly the probe quota** before outcomes are
//!    recorded — no more, no fewer.
//! 3. The machine is **deterministic**: the same outcome sequence drives
//!    two breakers through identical admit/state traces (the property the
//!    engine's byte-identical chaos replays rest on).

use cnnperf_core::resilience::{BreakerConfig, BreakerState, CircuitBreaker};
use proptest::prelude::*;

/// Randomized-but-sane breaker tuning.
fn config() -> impl Strategy<Value = BreakerConfig> {
    (2usize..10, 1usize..5, 3u32..10, 1u64..25, 1u32..5).prop_map(
        |(window, min_samples, threshold_tenths, cooldown_ticks, probe_quota)| BreakerConfig {
            window,
            failure_threshold: threshold_tenths as f64 / 10.0,
            min_samples: min_samples.min(window),
            cooldown_ticks,
            probe_quota,
        },
    )
}

/// Outcome sequences: true = success.
fn outcomes() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), 1..120)
}

proptest! {
    /// From any reachable state, an open breaker admits again once the
    /// cooldown has elapsed — it can never reject forever.
    #[test]
    fn never_stuck_open(cfg in config(), seq in outcomes()) {
        let cooldown = cfg.cooldown_ticks;
        let mut b = CircuitBreaker::new(cfg);
        for (i, &ok) in seq.iter().enumerate() {
            let tick = i as u64 + 1;
            if b.admit(tick) {
                b.record(tick, ok);
            }
            if b.state() == BreakerState::Open {
                // a clone probes the future without disturbing the run
                let mut probe = b.clone();
                prop_assert!(
                    probe.admit(tick + cooldown),
                    "open at tick {tick}, still rejecting at {}",
                    tick + cooldown
                );
                prop_assert_eq!(probe.state(), BreakerState::HalfOpen);
            }
        }
    }

    /// Once half-open, exactly `probe_quota` admits succeed before any
    /// outcome is recorded; the next admit is rejected.
    #[test]
    fn half_open_admits_exactly_the_probe_quota(cfg in config()) {
        let quota = cfg.probe_quota;
        let cooldown = cfg.cooldown_ticks;
        let min = cfg.min_samples as u64;
        let mut b = CircuitBreaker::new(cfg);
        // drive open with solid failures
        let mut tick = 0;
        while b.state() != BreakerState::Open {
            tick += 1;
            prop_assert!(b.admit(tick));
            b.record(tick, false);
            prop_assert!(tick <= min + 1, "did not open by tick {tick}");
        }
        let probe_tick = tick + cooldown;
        let mut admitted = 0u32;
        for _ in 0..quota + 3 {
            if b.admit(probe_tick) {
                admitted += 1;
            }
        }
        prop_assert_eq!(admitted, quota);
        prop_assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    /// Identical inputs produce identical traces: admits, states, and the
    /// records they gate never diverge between two breakers.
    #[test]
    fn deterministic_under_identical_sequences(cfg in config(), seq in outcomes()) {
        let mut a = CircuitBreaker::new(cfg.clone());
        let mut b = CircuitBreaker::new(cfg);
        for (i, &ok) in seq.iter().enumerate() {
            let tick = i as u64 + 1;
            let ia = a.admit(tick);
            let ib = b.admit(tick);
            prop_assert_eq!(ia, ib, "admit diverged at tick {}", tick);
            if ia {
                a.record(tick, ok);
                b.record(tick, ok);
            }
            prop_assert_eq!(a.state(), b.state(), "state diverged at tick {}", tick);
        }
    }
}
