//! Watchdog supervision for corpus-build cells.
//!
//! A wedged cell — an interpreter loop that stopped terminating, a
//! simulator chewing through a pathological event storm — used to hang
//! the whole corpus build. The supervisor turns "silent" into "cancelled":
//!
//! - Each cell registers a [`CellGuard`] before it starts measuring. The
//!   guard owns a logical-tick heartbeat (an `AtomicU64`) and a
//!   cancellation token, and derives an [`ExecBudget`] whose observer
//!   stamps the heartbeat from the interpreter/simulator cancellation
//!   check sites (every `CANCEL_CHECK_INTERVAL` steps /
//!   `SIM_CANCEL_CHECK_EVENTS` events).
//! - A single watchdog thread polls all registered cells. A cell whose
//!   tick has not changed for longer than
//!   [`SuperviseConfig::cell_timeout_ms`] is declared stale and its
//!   cancellation token is fired; the in-flight execution returns
//!   `ExecError::Cancelled` at its next check point and the pipeline
//!   records the cell as a timeout fault instead of waiting forever.
//!
//! The heartbeat is *logical* progress, not wall-clock aliveness: a
//! blocked thread stamps nothing, so blocking and spinning are detected
//! identically.

use ptx_analysis::ExecBudget;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Heartbeats stamped by supervised executions.
static SUPERVISE_HEARTBEATS: obs::LazyCounter = obs::LazyCounter::new("supervise.heartbeats");
/// Cells declared stale (silent past the timeout).
static SUPERVISE_STALE: obs::LazyCounter = obs::LazyCounter::new("supervise.stale_cells");
/// Cancellation tokens fired by the watchdog.
static SUPERVISE_CANCELLED: obs::LazyCounter = obs::LazyCounter::new("supervise.cancelled");
/// Wall time of supervised cells, in microseconds.
static SUPERVISE_CELL_US: obs::LazyHistogram = obs::LazyHistogram::new("supervise.cell_us");

/// Watchdog configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperviseConfig {
    /// A cell silent for longer than this is cancelled.
    pub cell_timeout_ms: u64,
    /// Watchdog poll interval.
    pub poll_ms: u64,
}

impl SuperviseConfig {
    /// Timeout with a poll interval fine enough to detect staleness
    /// within ~a quarter of the timeout (bounded to keep the watchdog
    /// cheap at large timeouts and responsive at small ones).
    pub fn with_timeout_ms(cell_timeout_ms: u64) -> Self {
        SuperviseConfig {
            cell_timeout_ms,
            poll_ms: (cell_timeout_ms / 4).clamp(1, 50),
        }
    }
}

struct Watched {
    heartbeat: Arc<AtomicU64>,
    cancel: Arc<AtomicBool>,
    last_tick: u64,
    last_change: Instant,
    timed_out: bool,
}

#[derive(Default)]
struct Shared {
    cells: Mutex<HashMap<u64, Watched>>,
    shutdown: AtomicBool,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Watched>> {
        self.cells.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The watchdog: one background thread supervising any number of
/// concurrently running cells. Dropping the supervisor shuts the thread
/// down (after deregistering, running guards keep their tokens but no one
/// will fire them anymore).
pub struct Supervisor {
    shared: Arc<Shared>,
    config: SuperviseConfig,
    next_id: AtomicU64,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Supervisor {
    /// Start the watchdog thread.
    pub fn start(config: SuperviseConfig) -> Supervisor {
        let shared = Arc::new(Shared::default());
        let scan_target = Arc::clone(&shared);
        let timeout = Duration::from_millis(config.cell_timeout_ms);
        let poll = Duration::from_millis(config.poll_ms.max(1));
        let handle = std::thread::Builder::new()
            .name("cell-watchdog".into())
            .spawn(move || {
                while !scan_target.shutdown.load(Ordering::Relaxed) {
                    scan(&scan_target, timeout);
                    std::thread::sleep(poll);
                }
            })
            .expect("spawn watchdog thread");
        Supervisor {
            shared,
            config,
            next_id: AtomicU64::new(0),
            handle: Some(handle),
        }
    }

    /// Watchdog configuration this supervisor runs with.
    pub fn config(&self) -> SuperviseConfig {
        self.config
    }

    /// Register a cell about to run; the returned guard carries its
    /// heartbeat and cancellation token and deregisters on drop.
    pub fn guard(&self) -> CellGuard {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let heartbeat = Arc::new(AtomicU64::new(0));
        let cancel = Arc::new(AtomicBool::new(false));
        self.shared.lock().insert(
            id,
            Watched {
                heartbeat: Arc::clone(&heartbeat),
                cancel: Arc::clone(&cancel),
                last_tick: 0,
                last_change: Instant::now(),
                timed_out: false,
            },
        );
        CellGuard {
            shared: Arc::clone(&self.shared),
            id,
            heartbeat,
            cancel,
            started: Instant::now(),
            span: Some(SUPERVISE_CELL_US.span()),
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One watchdog scan over all registered cells.
fn scan(shared: &Shared, timeout: Duration) {
    let now = Instant::now();
    let mut cells = shared.lock();
    for watched in cells.values_mut() {
        let tick = watched.heartbeat.load(Ordering::Relaxed);
        if tick != watched.last_tick {
            watched.last_tick = tick;
            watched.last_change = now;
            continue;
        }
        if !watched.timed_out && now.duration_since(watched.last_change) > timeout {
            watched.timed_out = true;
            SUPERVISE_STALE.inc();
            watched.cancel.store(true, Ordering::Relaxed);
            SUPERVISE_CANCELLED.inc();
        }
    }
}

/// RAII registration of one supervised cell.
pub struct CellGuard {
    shared: Arc<Shared>,
    id: u64,
    heartbeat: Arc<AtomicU64>,
    cancel: Arc<AtomicBool>,
    started: Instant,
    span: Option<obs::SpanTimer>,
}

impl CellGuard {
    /// Execution budget wired to this cell: the observer stamps the
    /// heartbeat at every cancellation check point, the token lets the
    /// watchdog cancel the execution.
    pub fn budget(&self) -> ExecBudget {
        let heartbeat = Arc::clone(&self.heartbeat);
        ExecBudget::default()
            .with_cancel(Arc::clone(&self.cancel))
            .with_observer(Arc::new(move || {
                heartbeat.fetch_add(1, Ordering::Relaxed);
                SUPERVISE_HEARTBEATS.inc();
            }))
    }

    /// Has the watchdog fired this cell's cancellation token?
    pub fn timed_out(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Milliseconds since this cell registered.
    pub fn waited_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

impl Drop for CellGuard {
    fn drop(&mut self) {
        self.shared.lock().remove(&self.id);
        // SpanTimer records on drop
        self.span.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeating_cell_is_not_cancelled() {
        let sup = Supervisor::start(SuperviseConfig::with_timeout_ms(40));
        let guard = sup.guard();
        let budget = guard.budget();
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_millis(120) {
            budget.pulse(); // steady progress
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!guard.timed_out(), "live cell must not be cancelled");
    }

    #[test]
    fn silent_cell_is_cancelled_within_timeout() {
        let sup = Supervisor::start(SuperviseConfig::with_timeout_ms(30));
        let guard = sup.guard();
        let budget = guard.budget();
        budget.pulse(); // one sign of life, then silence
        let t0 = Instant::now();
        while !guard.timed_out() && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(guard.timed_out(), "silent cell must be cancelled");
        assert!(budget.cancelled(), "budget token must observe the firing");
    }

    #[test]
    fn deregistered_cells_are_forgotten() {
        let sup = Supervisor::start(SuperviseConfig::with_timeout_ms(10));
        let guard = sup.guard();
        let cancel = Arc::clone(&guard.cancel);
        drop(guard); // deregistered before it could ever look stale
        std::thread::sleep(Duration::from_millis(80));
        assert!(
            !cancel.load(Ordering::Relaxed),
            "a dropped guard must never be cancelled"
        );
    }
}
