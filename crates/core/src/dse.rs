//! Design-space exploration (the paper's Section V application): rank `n`
//! candidate GPGPUs for a CNN with predictions only, and compare the wall
//! time of the estimation path against naive per-device profiling
//! (Table IV's `T_est = t_dca + n * t_pm` vs `T_measur = t_p * n`).

use crate::features::{CnnProfile, ProfileError};
use crate::model::PerformancePredictor;
use cnn_ir::ModelGraph;
use gpu_sim::{DeviceSpec, SimMode, Simulator};
use serde::{Deserialize, Serialize};

/// One device's predicted standing for a CNN.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceRanking {
    pub device: String,
    pub predicted_ipc: f64,
}

/// Result of a prediction-driven DSE over `n` devices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DseOutcome {
    pub model: String,
    /// Devices sorted by predicted IPC, best first.
    pub ranking: Vec<DeviceRanking>,
    /// `t_dca`: dynamic code analysis seconds (paid once).
    pub t_dca: f64,
    /// `t_pm`: predictive-model inference seconds (paid per device).
    pub t_pm: f64,
    /// `T_est = t_dca + n * t_pm`.
    pub t_est: f64,
}

/// Run the proposed approach: analyze once, predict per device. The
/// analysis is served from the process-wide [`crate::analysis_cache`], so
/// repeated sweeps (and sweeps following an `estimate` of the same model)
/// skip straight to prediction.
pub fn rank_devices(
    predictor: &PerformancePredictor,
    model: &ModelGraph,
    devices: &[DeviceSpec],
) -> Result<DseOutcome, ProfileError> {
    let analyzed = crate::analysis_cache::profile_model_cached(model)?;
    rank_devices_profiled(predictor, &analyzed.profile, devices)
}

/// Same, reusing an existing profile (no re-analysis).
pub fn rank_devices_profiled(
    predictor: &PerformancePredictor,
    profile: &CnnProfile,
    devices: &[DeviceSpec],
) -> Result<DseOutcome, ProfileError> {
    let t0 = std::time::Instant::now();
    let mut ranking: Vec<DeviceRanking> = devices
        .iter()
        .map(|d| DeviceRanking {
            device: d.name.clone(),
            predicted_ipc: predictor.predict(profile, d),
        })
        .collect();
    let predict_wall = t0.elapsed().as_secs_f64();
    let t_pm = predict_wall / devices.len().max(1) as f64;
    ranking.sort_by(|a, b| b.predicted_ipc.total_cmp(&a.predicted_ipc));
    let t_est = profile.dca_seconds + devices.len() as f64 * t_pm;
    Ok(DseOutcome {
        model: profile.name.clone(),
        ranking,
        t_dca: profile.dca_seconds,
        t_pm,
        t_est,
    })
}

/// Wall time of the naive approach for one device: codegen plus full
/// profiling (the detailed simulator standing in for hardware + nvprof,
/// no launch memoization). The timer starts *before* lowering so the
/// measurement is symmetric with the estimation path, whose `t_dca`
/// also includes lowering — the Table IV speedup comparison depends on
/// both sides being charged for codegen.
pub fn naive_profile_time(model: &ModelGraph, dev: &DeviceSpec) -> Result<f64, ProfileError> {
    let t0 = std::time::Instant::now();
    let plan = ptx_codegen::lower(model, &dev.sm_target())?;
    let sim = Simulator::new(dev.clone(), SimMode::DetailedNoMemo);
    let _ = sim.simulate_plan(&plan).map_err(ProfileError::Exec)?;
    Ok(t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PerformancePredictor;
    use crate::pipeline::build_corpus;
    use mlkit::RegressorKind;

    #[test]
    fn dse_ranks_all_devices_once() {
        let models: Vec<ModelGraph> = ["alexnet", "mobilenet", "vgg16", "resnet50"]
            .iter()
            .map(|n| cnn_ir::zoo::build(n).unwrap())
            .collect();
        let corpus = build_corpus(&models, &gpu_sim::training_devices()).unwrap();
        let p = PerformancePredictor::train(&corpus.dataset, RegressorKind::DecisionTree, 3);

        let devices = gpu_sim::all_devices();
        let target = cnn_ir::zoo::build("MobileNetV2").unwrap();
        let out = rank_devices(&p, &target, &devices).unwrap();
        assert_eq!(out.ranking.len(), devices.len());
        // sorted descending
        for w in out.ranking.windows(2) {
            assert!(w[0].predicted_ipc >= w[1].predicted_ipc);
        }
        // estimation bookkeeping
        assert!(out.t_dca > 0.0);
        assert!(out.t_est >= out.t_dca);
    }

    #[test]
    fn estimation_beats_naive_profiling() {
        let models: Vec<ModelGraph> = ["alexnet", "mobilenet"]
            .iter()
            .map(|n| cnn_ir::zoo::build(n).unwrap())
            .collect();
        let corpus = build_corpus(&models, &gpu_sim::training_devices()).unwrap();
        let p = PerformancePredictor::train(&corpus.dataset, RegressorKind::DecisionTree, 3);

        let target = cnn_ir::zoo::build("vgg16").unwrap();
        let dev = gpu_sim::specs::gtx_1080_ti();
        let ours = rank_devices(&p, &target, std::slice::from_ref(&dev))
            .unwrap()
            .t_est;
        let naive = naive_profile_time(&target, &dev).unwrap();
        assert!(
            naive > ours,
            "naive {naive}s should exceed estimation {ours}s"
        );
    }
}
