//! Phase 1 of the paper (Fig. 3): training-dataset creation. Every zoo CNN
//! is statically analyzed, lowered to PTX, instruction-counted by the
//! dynamic code analysis, and "run" on every training GPU under the
//! `nvprof`-like profiler to obtain the measured IPC response.

use crate::features::{feature_names, feature_row, profile_model, CnnProfile, ProfileError};
use cnn_ir::ModelGraph;
use gpu_sim::{profile_run, DeviceSpec};
use mlkit::Dataset;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Metadata for one dataset row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleMeta {
    pub model: String,
    pub device: String,
    pub ipc: f64,
    pub ipc_clean: f64,
    pub latency_ms: f64,
    pub profiling_wall_s: f64,
}

/// The assembled training corpus: the regression dataset plus per-row and
/// per-model metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    pub dataset: Dataset,
    pub samples: Vec<SampleMeta>,
    pub profiles: Vec<CnnProfile>,
}

impl Corpus {
    /// Label convention for rows: `model@device`.
    pub fn label(model: &str, device: &str) -> String {
        format!("{model}@{device}")
    }

    /// CNN profile by model name.
    pub fn profile(&self, model: &str) -> Option<&CnnProfile> {
        self.profiles.iter().find(|p| p.name == model)
    }
}

/// Build the corpus for `models` x `devices`. Parallel over models (each
/// model's lowering + counting is reused across its device rows).
pub fn build_corpus(
    models: &[ModelGraph],
    devices: &[DeviceSpec],
) -> Result<Corpus, ProfileError> {
    let per_model: Result<Vec<_>, ProfileError> = models
        .par_iter()
        .map(|m| {
            let (profile, plan, _counts, _summary) = profile_model(m)?;
            let mut rows = Vec::with_capacity(devices.len());
            for dev in devices {
                let rec = profile_run(&plan, dev, 0).map_err(ProfileError::Exec)?;
                rows.push((feature_row(&profile, dev), rec));
            }
            Ok((profile, rows))
        })
        .collect();
    let per_model = per_model?;

    let mut dataset = Dataset::new(feature_names());
    let mut samples = Vec::new();
    let mut profiles = Vec::new();
    for (profile, rows) in per_model {
        for (features, rec) in rows {
            dataset.push(
                Corpus::label(&rec.model_name, &rec.device_name),
                features,
                rec.ipc,
            );
            samples.push(SampleMeta {
                model: rec.model_name.clone(),
                device: rec.device_name.clone(),
                ipc: rec.ipc,
                ipc_clean: rec.ipc_clean,
                latency_ms: rec.latency_ms,
                profiling_wall_s: rec.profiling_wall_s,
            });
        }
        profiles.push(profile);
    }
    Ok(Corpus {
        dataset,
        samples,
        profiles,
    })
}

/// Build the paper's corpus: the 32-model zoo on the two training GPUs
/// (GTX 1080 Ti and V100S).
pub fn build_paper_corpus() -> Result<Corpus, ProfileError> {
    let models = cnn_ir::zoo::build_all();
    let devices = gpu_sim::training_devices();
    build_corpus(&models, &devices)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> Corpus {
        let models: Vec<ModelGraph> = ["alexnet", "mobilenet", "vgg16"]
            .iter()
            .map(|n| cnn_ir::zoo::build(n).unwrap())
            .collect();
        let devices = gpu_sim::training_devices();
        build_corpus(&models, &devices).unwrap()
    }

    #[test]
    fn corpus_has_model_x_device_rows() {
        let c = small_corpus();
        assert_eq!(c.dataset.len(), 6);
        assert_eq!(c.samples.len(), 6);
        assert_eq!(c.profiles.len(), 3);
        assert!(c.dataset.labels.contains(&"alexnet@V100S".to_string()));
    }

    #[test]
    fn responses_are_positive_ipc() {
        let c = small_corpus();
        for s in &c.samples {
            assert!(s.ipc > 0.0 && s.ipc < 10.0, "{}: {}", s.model, s.ipc);
        }
    }

    #[test]
    fn same_model_differs_across_devices() {
        let c = small_corpus();
        let a = c
            .samples
            .iter()
            .find(|s| s.model == "vgg16" && s.device == "GTX 1080 Ti")
            .unwrap();
        let b = c
            .samples
            .iter()
            .find(|s| s.model == "vgg16" && s.device == "V100S")
            .unwrap();
        assert_ne!(a.ipc, b.ipc);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = small_corpus();
        let b = small_corpus();
        assert_eq!(a.dataset.y, b.dataset.y);
    }
}
