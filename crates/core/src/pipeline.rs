//! Phase 1 of the paper (Fig. 3): training-dataset creation. Every zoo CNN
//! is statically analyzed, lowered to PTX, instruction-counted by the
//! dynamic code analysis, and "run" on every training GPU under the
//! `nvprof`-like profiler to obtain the measured IPC response.
//!
//! Two entry points share the implementation:
//!
//! - [`build_corpus`] — the paper's protocol: one measurement per cell,
//!   fail-fast on any error. Kept for reproducibility of the published
//!   numbers (and of the on-disk corpus cache).
//! - [`build_corpus_robust`] — the fault-tolerant protocol: repeated
//!   measurements with retry and median/MAD outlier rejection per
//!   [`RobustConfig`], degrading gracefully instead of failing wholesale.
//!   Every (model, device) cell gets a [`CellReport`]; cells that lose
//!   information are `Degraded`, cells that produce no measurement are
//!   `Failed` and simply missing from the dataset. `strict` mode restores
//!   fail-fast semantics under the same measurement protocol.

use crate::analysis_cache::model_content_hash;
use crate::features::{feature_names, feature_row, CnnProfile, ProfileError};
use crate::journal::{self, CellOutcome, Journal, Replay};
use crate::supervise::{CellGuard, Supervisor};
use cnn_ir::ModelGraph;
use gpu_sim::{
    profile_robust_budgeted, ChaosInjector, ChaosProfile, DeviceSpec, FaultInjector, FaultProfile,
    ProfileFault, RetryPolicy, RobustProfile, TierFaultKind,
};
use mlkit::Dataset;
use ptx::kernel::LaunchPlan;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Corpus builds started.
static CORPUS_BUILDS: obs::LazyCounter = obs::LazyCounter::new("corpus.builds");
/// Per-cell outcomes of completed (non-strict-aborted) builds.
static CORPUS_CELLS_OK: obs::LazyCounter = obs::LazyCounter::new("corpus.cells.ok");
static CORPUS_CELLS_DEGRADED: obs::LazyCounter = obs::LazyCounter::new("corpus.cells.degraded");
static CORPUS_CELLS_FAILED: obs::LazyCounter = obs::LazyCounter::new("corpus.cells.failed");
/// Cells cancelled by the supervision watchdog.
static CORPUS_CELLS_TIMEOUT: obs::LazyCounter = obs::LazyCounter::new("corpus.cells.timeout");
/// Dataset rows emitted by completed builds.
static CORPUS_ROWS: obs::LazyCounter = obs::LazyCounter::new("corpus.rows");
/// Wall time of whole corpus builds, in microseconds.
static CORPUS_BUILD_US: obs::LazyHistogram = obs::LazyHistogram::new("corpus.build_us");

/// Metadata for one dataset row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleMeta {
    pub model: String,
    pub device: String,
    pub ipc: f64,
    pub ipc_clean: f64,
    pub latency_ms: f64,
    pub profiling_wall_s: f64,
}

/// The assembled training corpus: the regression dataset plus per-row and
/// per-model metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    pub dataset: Dataset,
    pub samples: Vec<SampleMeta>,
    pub profiles: Vec<CnnProfile>,
}

impl Corpus {
    /// Label convention for rows: `model@device`.
    pub fn label(model: &str, device: &str) -> String {
        format!("{model}@{device}")
    }

    /// CNN profile by model name.
    pub fn profile(&self, model: &str) -> Option<&CnnProfile> {
        self.profiles.iter().find(|p| p.name == model)
    }

    /// Canonical JSON of this corpus with the wall-clock measurement
    /// fields (`SampleMeta::profiling_wall_s`, `CnnProfile::dca_seconds`)
    /// zeroed. Everything else is deterministic for a given input set and
    /// fault seed, so a resumed build's canonical JSON is byte-identical
    /// to an uninterrupted one — the resume-equality guarantee the journal
    /// tests (and the CI kill-resume job) diff against.
    pub fn canonical_json(&self) -> String {
        let mut c = self.clone();
        for s in &mut c.samples {
            s.profiling_wall_s = 0.0;
        }
        for p in &mut c.profiles {
            p.dca_seconds = 0.0;
        }
        serde_json::to_string(&c).unwrap_or_default()
    }
}

/// Measurement protocol configuration for [`build_corpus_robust`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustConfig {
    /// Repeated measurements per (model, device) cell.
    pub runs: u32,
    pub retry: RetryPolicy,
    pub faults: FaultProfile,
    /// Fail the whole build on the first error instead of degrading.
    pub strict: bool,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig {
            runs: 5,
            retry: RetryPolicy::default(),
            faults: FaultProfile::none(),
            strict: false,
        }
    }
}

impl RobustConfig {
    /// The paper's original protocol: a single measurement per cell, no
    /// faults, fail-fast. [`build_corpus`] uses this; it reproduces the
    /// pre-robustness corpus bit-for-bit.
    pub fn strict_single_run() -> Self {
        RobustConfig {
            runs: 1,
            retry: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::no_backoff()
            },
            faults: FaultProfile::none(),
            strict: true,
        }
    }
}

/// Health of one (model, device) cell after the robust protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellStatus {
    /// Every run measured cleanly, nothing rejected.
    Ok,
    /// The cell produced a usable estimate but lost information on the
    /// way: retried transients, killed hangs, rejected outliers, or runs
    /// that died entirely.
    Degraded {
        transient_retries: u32,
        hangs: u32,
        rejected_outliers: u32,
        failed_runs: u32,
    },
    /// No usable measurement; the cell is absent from the dataset.
    Failed { error: String },
    /// The cell went silent and was cancelled by the supervision watchdog
    /// ([`crate::supervise`]); absent from the dataset like `Failed`.
    TimedOut { waited_ms: u64 },
}

/// Per-cell entry of a [`CorpusReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    pub model: String,
    pub device: String,
    pub status: CellStatus,
    /// Measurements that survived retry and outlier rejection.
    pub runs_retained: u32,
}

/// Build health report: one entry per (model, device) cell, in model-major
/// order. Fully deterministic for a given input set and fault seed — the
/// replay tests compare serialized reports byte-for-byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusReport {
    pub strict: bool,
    pub runs: u32,
    pub faults: FaultProfile,
    pub cells: Vec<CellReport>,
}

impl CorpusReport {
    pub fn ok_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.status == CellStatus::Ok)
            .count()
    }

    pub fn degraded_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.status, CellStatus::Degraded { .. }))
            .count()
    }

    pub fn failed_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.status, CellStatus::Failed { .. }))
            .count()
    }

    pub fn timed_out_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.status, CellStatus::TimedOut { .. }))
            .count()
    }

    /// One-line human summary, e.g. `62/64 cells ok, 1 degraded, 1 failed`
    /// (plus `, N timed out` when the watchdog cancelled any cells).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{}/{} cells ok, {} degraded, {} failed",
            self.ok_count(),
            self.cells.len(),
            self.degraded_count(),
            self.failed_count()
        );
        let timed_out = self.timed_out_count();
        if timed_out > 0 {
            s.push_str(&format!(", {timed_out} timed out"));
        }
        s
    }
}

fn cell_of(model: &str, device: &str, rp: &RobustProfile) -> CellReport {
    let status = if rp.degraded() {
        CellStatus::Degraded {
            transient_retries: rp.transient_retries,
            hangs: rp.hangs,
            rejected_outliers: rp.rejected_outliers,
            failed_runs: rp.failed_runs,
        }
    } else {
        CellStatus::Ok
    };
    CellReport {
        model: model.to_string(),
        device: device.to_string(),
        status,
        runs_retained: rp.records.len() as u32,
    }
}

/// Optional build infrastructure for [`build_corpus_robust_with`]: the
/// cell journal (with its replayed state) and the watchdog supervisor.
/// All default to off, in which case the build behaves exactly like the
/// plain robust protocol.
pub struct BuildOptions<'a> {
    /// Journal finished cells here as workers complete them.
    pub journal: Option<&'a Journal>,
    /// Cells/profiles replayed from the journal: skipped, not recomputed.
    pub replay: Option<&'a Replay>,
    /// Watchdog supervising every computed cell.
    pub supervisor: Option<&'a Supervisor>,
    /// Chaos injected into cell execution (tier name `"cell"`); used by
    /// the watchdog tests and the CI chaos job.
    pub chaos: ChaosProfile,
}

impl BuildOptions<'_> {
    /// No journal, no supervision, no chaos.
    pub fn none() -> Self {
        BuildOptions {
            journal: None,
            replay: None,
            supervisor: None,
            chaos: ChaosProfile::none(),
        }
    }
}

impl Default for BuildOptions<'_> {
    fn default() -> Self {
        Self::none()
    }
}

/// Per-cell result carried from the parallel workers to the serial
/// assembly. Faults keep both the journaled form (timeout flag + error
/// string, identical whether computed or replayed — the resume-equality
/// guarantee extends to the report) and, for freshly computed cells, the
/// original [`ProfileFault`] for strict-mode aborts.
enum RowOutcome {
    Profile(RobustProfile),
    Fault {
        timeout: bool,
        waited_ms: u64,
        error: String,
        fault: Option<ProfileFault>,
    },
}

impl RowOutcome {
    fn from_replayed(outcome: CellOutcome) -> Self {
        match outcome {
            CellOutcome::Profile(rp) => RowOutcome::Profile(rp),
            CellOutcome::Fault {
                timeout,
                waited_ms,
                error,
            } => RowOutcome::Fault {
                timeout,
                waited_ms,
                error,
                fault: None,
            },
        }
    }

    fn from_computed(result: Result<RobustProfile, ProfileFault>) -> Self {
        match result {
            Ok(rp) => RowOutcome::Profile(rp),
            Err(fault) => {
                let (timeout, waited_ms) = match &fault {
                    ProfileFault::Timeout { waited_ms, .. } => (true, *waited_ms),
                    _ => (false, 0),
                };
                RowOutcome::Fault {
                    timeout,
                    waited_ms,
                    error: fault.to_string(),
                    fault: Some(fault),
                }
            }
        }
    }

    /// The journaled form of this outcome.
    fn to_cell_outcome(&self) -> CellOutcome {
        match self {
            RowOutcome::Profile(rp) => CellOutcome::Profile(rp.clone()),
            RowOutcome::Fault {
                timeout,
                waited_ms,
                error,
                ..
            } => CellOutcome::Fault {
                timeout: *timeout,
                waited_ms: *waited_ms,
                error: error.clone(),
            },
        }
    }
}

/// Execute one (model, device) cell: optional chaos, optional supervision,
/// robust measurement under the guard's budget. Any failure while the
/// watchdog has fired this cell's token is reported as a timeout — the
/// cancellation races the interpreter's own error paths, and the watchdog
/// verdict is the one the journal must remember.
fn run_cell(
    plan: &LaunchPlan,
    dev: &DeviceSpec,
    cfg: &RobustConfig,
    injector: &FaultInjector,
    chaos: &ChaosInjector,
    guard: Option<&CellGuard>,
) -> Result<RobustProfile, ProfileFault> {
    let timeout_fault = |waited_ms: u64| ProfileFault::Timeout {
        model: plan.model_name.clone(),
        device: dev.name.clone(),
        waited_ms,
    };
    match chaos.tier_fault(&plan.model_name, &dev.name, "cell") {
        TierFaultKind::Hang => {
            // a real hang: no heartbeats, no progress. Supervised builds
            // sit here until the watchdog fires the token; unsupervised
            // builds would hang forever, so degrade to an immediate
            // timeout fault instead.
            let Some(guard) = guard else {
                return Err(timeout_fault(0));
            };
            while !guard.timed_out() {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            return Err(timeout_fault(guard.waited_ms()));
        }
        TierFaultKind::Slow => {
            std::thread::sleep(std::time::Duration::from_millis(
                chaos.profile().slow_ms.max(1),
            ));
        }
        // cell workers contain no unwind boundary; panic chaos is for the
        // estimation engine's tier workers
        TierFaultKind::Panic | TierFaultKind::None => {}
    }
    let budget = guard.map(|g| g.budget()).unwrap_or_default();
    let result = profile_robust_budgeted(plan, dev, cfg.runs, &cfg.retry, injector, &budget);
    match (&result, guard) {
        (Err(_), Some(g)) if g.timed_out() => Err(timeout_fault(g.waited_ms())),
        _ => result,
    }
}

/// Build the corpus for `models` x `devices` under the robust measurement
/// protocol. Parallel over models (each model's lowering + counting is
/// reused across its device rows). Returns the corpus together with the
/// per-cell health report.
///
/// In non-strict mode a failed model analysis fails all of that model's
/// cells, a failed cell loses only its own row, and the build itself
/// succeeds as long as the report can be assembled. In strict mode the
/// first failure aborts the build with its error.
pub fn build_corpus_robust(
    models: &[ModelGraph],
    devices: &[DeviceSpec],
    cfg: &RobustConfig,
) -> Result<(Corpus, CorpusReport), ProfileError> {
    build_corpus_robust_with(models, devices, cfg, &BuildOptions::none())
}

/// [`build_corpus_robust`] with crash-safety and supervision
/// ([`BuildOptions`]): journaled cells are appended as each worker
/// finishes, replayed cells are skipped without recomputation (a fully
/// journaled model skips even its analysis), and supervised cells that go
/// silent past the watchdog timeout degrade to [`CellStatus::TimedOut`]
/// instead of hanging the build.
pub fn build_corpus_robust_with(
    models: &[ModelGraph],
    devices: &[DeviceSpec],
    cfg: &RobustConfig,
    opts: &BuildOptions<'_>,
) -> Result<(Corpus, CorpusReport), ProfileError> {
    type ModelRows = (Option<CnnProfile>, Vec<(Vec<f64>, RowOutcome)>);
    CORPUS_BUILDS.inc();
    let _build_span = CORPUS_BUILD_US.span();
    let injector = FaultInjector::new(cfg.faults.clone());
    let chaos = ChaosInjector::new(opts.chaos.clone());
    let per_model: Vec<Result<ModelRows, ProfileError>> = models
        .par_iter()
        .map(|m| {
            let hash = model_content_hash(m);
            let replayed_cell =
                |dev: &DeviceSpec| opts.replay.and_then(|r| r.cell(hash, &dev.name)).cloned();

            // full-replay fast path: every cell journaled, and the model
            // analysis either journaled too or not needed (all faults) —
            // zero recomputation, not even the (cached) analysis
            let replayed_profile = opts.replay.and_then(|r| r.profiles.get(&hash));
            if devices.iter().all(|d| {
                replayed_cell(d).is_some_and(|c| {
                    replayed_profile.is_some() || matches!(c, CellOutcome::Fault { .. })
                })
            }) && !devices.is_empty()
            {
                let rows = devices
                    .iter()
                    .map(|dev| {
                        journal::note_replayed();
                        let outcome = replayed_cell(dev).expect("checked above");
                        let features = replayed_profile
                            .map(|p| feature_row(p, dev))
                            .unwrap_or_default();
                        (features, RowOutcome::from_replayed(outcome))
                    })
                    .collect();
                return Ok((replayed_profile.cloned(), rows));
            }

            // memoized: rebuilding a corpus (or building after estimate/dse
            // touched the same models) reuses each model's analysis
            let analyzed = crate::analysis_cache::profile_model_cached(m)?;
            let profile = analyzed.profile.clone();
            if let Some(j) = opts.journal {
                if replayed_profile.is_none() {
                    j.append_model(m.name(), hash, &profile)
                        .map_err(|e| ProfileError::Journal(e.to_string()))?;
                }
            }
            let mut rows = Vec::with_capacity(devices.len());
            for dev in devices {
                if let Some(outcome) = replayed_cell(dev) {
                    journal::note_replayed();
                    rows.push((
                        feature_row(&profile, dev),
                        RowOutcome::from_replayed(outcome),
                    ));
                    continue;
                }
                let guard = opts.supervisor.map(|s| s.guard());
                let result = run_cell(&analyzed.plan, dev, cfg, &injector, &chaos, guard.as_ref());
                drop(guard);
                journal::note_computed();
                let row = RowOutcome::from_computed(result);
                if let Some(j) = opts.journal {
                    j.append_cell(m.name(), hash, &dev.name, &row.to_cell_outcome())
                        .map_err(|e| ProfileError::Journal(e.to_string()))?;
                }
                rows.push((feature_row(&profile, dev), row));
            }
            Ok((Some(profile), rows))
        })
        .collect();

    let mut dataset = Dataset::new(feature_names());
    let mut samples = Vec::new();
    let mut profiles = Vec::new();
    let mut cells = Vec::with_capacity(models.len() * devices.len());

    for (model, result) in models.iter().zip(per_model) {
        match result {
            Err(e) => {
                if cfg.strict {
                    return Err(e);
                }
                let error = e.to_string();
                for dev in devices {
                    cells.push(CellReport {
                        model: model.name().to_string(),
                        device: dev.name.clone(),
                        status: CellStatus::Failed {
                            error: error.clone(),
                        },
                        runs_retained: 0,
                    });
                }
            }
            Ok((profile, rows)) => {
                let model_name = model.name().to_string();
                for (dev, (features, row)) in devices.iter().zip(rows) {
                    match row {
                        RowOutcome::Fault {
                            timeout,
                            waited_ms,
                            error,
                            fault,
                        } => {
                            if cfg.strict {
                                return Err(ProfileError::Fault(fault.unwrap_or_else(|| {
                                    if timeout {
                                        ProfileFault::Timeout {
                                            model: model_name.clone(),
                                            device: dev.name.clone(),
                                            waited_ms,
                                        }
                                    } else {
                                        ProfileFault::Replayed {
                                            error: error.clone(),
                                        }
                                    }
                                })));
                            }
                            let status = if timeout {
                                CellStatus::TimedOut { waited_ms }
                            } else {
                                CellStatus::Failed { error }
                            };
                            cells.push(CellReport {
                                model: model_name.clone(),
                                device: dev.name.clone(),
                                status,
                                runs_retained: 0,
                            });
                        }
                        RowOutcome::Profile(rp) => {
                            if cfg.strict && rp.degraded() {
                                return Err(ProfileError::Fault(ProfileFault::Degraded {
                                    model: rp.model_name.clone(),
                                    device: rp.device_name.clone(),
                                    detail: format!(
                                        "{} retries, {} hangs, {} outliers rejected, {} dead runs",
                                        rp.transient_retries,
                                        rp.hangs,
                                        rp.rejected_outliers,
                                        rp.failed_runs
                                    ),
                                }));
                            }
                            cells.push(cell_of(&rp.model_name, &dev.name, &rp));
                            dataset.push(
                                Corpus::label(&rp.model_name, &rp.device_name),
                                features,
                                rp.ipc,
                            );
                            samples.push(SampleMeta {
                                model: rp.model_name.clone(),
                                device: rp.device_name.clone(),
                                ipc: rp.ipc,
                                ipc_clean: rp.ipc_clean,
                                latency_ms: rp.latency_ms,
                                profiling_wall_s: rp.profiling_wall_s,
                            });
                        }
                    }
                }
                if let Some(profile) = profile {
                    profiles.push(profile);
                }
            }
        }
    }

    // per-cell attempt accounting for the completed build; the underlying
    // retry/hang/outlier event counters live in gpu-sim's `profile.*`
    for cell in &cells {
        match cell.status {
            CellStatus::Ok => CORPUS_CELLS_OK.inc(),
            CellStatus::Degraded { .. } => CORPUS_CELLS_DEGRADED.inc(),
            CellStatus::Failed { .. } => CORPUS_CELLS_FAILED.inc(),
            CellStatus::TimedOut { .. } => CORPUS_CELLS_TIMEOUT.inc(),
        }
    }
    CORPUS_ROWS.add(samples.len() as u64);

    Ok((
        Corpus {
            dataset,
            samples,
            profiles,
        },
        CorpusReport {
            strict: cfg.strict,
            runs: cfg.runs,
            faults: cfg.faults.clone(),
            cells,
        },
    ))
}

/// Build the corpus for `models` x `devices` with the paper's original
/// single-run fail-fast protocol.
pub fn build_corpus(models: &[ModelGraph], devices: &[DeviceSpec]) -> Result<Corpus, ProfileError> {
    build_corpus_robust(models, devices, &RobustConfig::strict_single_run())
        .map(|(corpus, _report)| corpus)
}

/// Build the paper's corpus: the 32-model zoo on the two training GPUs
/// (GTX 1080 Ti and V100S).
pub fn build_paper_corpus() -> Result<Corpus, ProfileError> {
    let models = cnn_ir::zoo::build_all();
    let devices = gpu_sim::training_devices();
    build_corpus(&models, &devices)
}

/// [`build_paper_corpus`] under the robust protocol.
pub fn build_paper_corpus_robust(
    cfg: &RobustConfig,
) -> Result<(Corpus, CorpusReport), ProfileError> {
    let models = cnn_ir::zoo::build_all();
    let devices = gpu_sim::training_devices();
    build_corpus_robust(&models, &devices, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_models() -> Vec<ModelGraph> {
        ["alexnet", "mobilenet", "vgg16"]
            .iter()
            .map(|n| cnn_ir::zoo::build(n).unwrap())
            .collect()
    }

    fn small_corpus() -> Corpus {
        build_corpus(&small_models(), &gpu_sim::training_devices()).unwrap()
    }

    #[test]
    fn corpus_has_model_x_device_rows() {
        let c = small_corpus();
        assert_eq!(c.dataset.len(), 6);
        assert_eq!(c.samples.len(), 6);
        assert_eq!(c.profiles.len(), 3);
        assert!(c.dataset.labels.contains(&"alexnet@V100S".to_string()));
    }

    #[test]
    fn responses_are_positive_ipc() {
        let c = small_corpus();
        for s in &c.samples {
            assert!(s.ipc > 0.0 && s.ipc < 10.0, "{}: {}", s.model, s.ipc);
        }
    }

    #[test]
    fn same_model_differs_across_devices() {
        let c = small_corpus();
        let a = c
            .samples
            .iter()
            .find(|s| s.model == "vgg16" && s.device == "GTX 1080 Ti")
            .unwrap();
        let b = c
            .samples
            .iter()
            .find(|s| s.model == "vgg16" && s.device == "V100S")
            .unwrap();
        assert_ne!(a.ipc, b.ipc);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = small_corpus();
        let b = small_corpus();
        assert_eq!(a.dataset.y, b.dataset.y);
    }

    #[test]
    fn robust_faultfree_matches_strict_single_run() {
        let models = small_models();
        let devices = gpu_sim::training_devices();
        let strict = build_corpus(&models, &devices).unwrap();
        let cfg = RobustConfig {
            runs: 1,
            ..RobustConfig::default()
        };
        let (robust, report) = build_corpus_robust(&models, &devices, &cfg).unwrap();
        assert_eq!(strict.dataset.y, robust.dataset.y);
        assert_eq!(report.ok_count(), 6);
        assert_eq!(report.summary(), "6/6 cells ok, 0 degraded, 0 failed");
    }

    #[test]
    fn report_cells_are_model_major_ordered() {
        let cfg = RobustConfig::default();
        let (_, report) =
            build_corpus_robust(&small_models(), &gpu_sim::training_devices(), &cfg).unwrap();
        let order: Vec<(String, String)> = report
            .cells
            .iter()
            .map(|c| (c.model.clone(), c.device.clone()))
            .collect();
        assert_eq!(order[0].0, "alexnet");
        assert_eq!(order[1].0, "alexnet");
        assert_eq!(order[2].0, "mobilenet");
        assert_ne!(order[0].1, order[1].1);
    }
}
