//! Crash-safe cell journal for corpus builds.
//!
//! The corpus build is the longest-running stage of the pipeline, and
//! before this module a crash or OOM-kill discarded every completed
//! (model, device) cell. The journal is an append-only write-ahead log of
//! per-cell results: each rayon worker's finished cell is serialized as a
//! single line — `{fnv1a checksum} {json record}` — and flushed before the
//! build moves on, so a killed process loses at most the cell that was
//! in flight.
//!
//! Defenses mirror [`crate::cache`]:
//!
//! - **Segmented**: records rotate into `segment-NNNNN.jsonl` files every
//!   [`SEGMENT_RECORDS`] appends, bounding how much data one torn tail can
//!   take down.
//! - **Checksummed**: every line carries an FNV-1a hash of its JSON
//!   payload; replay verifies it before trusting the record.
//! - **Quarantined**: the first bad line stops replay for its segment —
//!   the segment is renamed to `<name>.corrupt` (evidence preserved), its
//!   valid prefix is rewritten in place via temp file + atomic rename, and
//!   every later segment is quarantined wholesale (ordering after a tear
//!   is no longer trustworthy).
//! - **Config-guarded**: the first record of a journal is the
//!   [`BuildMeta`] (sm target, runs, retry policy, fault profile, strict
//!   flag); resuming under a different configuration is refused rather
//!   than silently mixing measurement protocols.
//!
//! Replayed cells are skipped by `build_corpus_robust` (zero recompute —
//! not even the model analysis reruns if every cell of a model was
//! journaled), and the resulting corpus is byte-identical to an
//! uninterrupted build under [`crate::pipeline::Corpus::canonical_json`].

use crate::features::CnnProfile;
use gpu_sim::{FaultProfile, RetryPolicy, RobustProfile};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Records appended (meta + model + cell) across all journals.
static JOURNAL_APPENDS: obs::LazyCounter = obs::LazyCounter::new("journal.appends");
/// Cells served from replay instead of being recomputed.
static JOURNAL_REPLAYED: obs::LazyCounter = obs::LazyCounter::new("journal.replayed");
/// Cells computed (and journaled) because replay had no record.
static JOURNAL_COMPUTED: obs::LazyCounter = obs::LazyCounter::new("journal.computed");
/// Segments quarantined to `.corrupt` during replay.
static JOURNAL_CORRUPT_SEGMENTS: obs::LazyCounter =
    obs::LazyCounter::new("journal.corrupt_segments");

/// Bump when any journaled record changes shape; a resumed build refuses
/// journals written under a different schema.
pub const JOURNAL_SCHEMA: u32 = 1;

/// Records per segment file before rotating to the next one.
pub const SEGMENT_RECORDS: u32 = 128;

/// Mark a replayed cell (called by the pipeline when a journal record is
/// used instead of recomputation).
pub fn note_replayed() {
    JOURNAL_REPLAYED.inc();
}

/// Mark a computed cell (called by the pipeline when a cell had to run).
pub fn note_computed() {
    JOURNAL_COMPUTED.inc();
}

/// Build configuration fingerprint; resuming checks it for equality so a
/// journal written under one measurement protocol can never leak cells
/// into a build with another.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuildMeta {
    pub schema: u32,
    pub sm_target: String,
    pub runs: u32,
    pub retry: RetryPolicy,
    pub faults: FaultProfile,
    pub strict: bool,
}

/// Result of one journaled cell: either the full robust profile or the
/// fault that killed it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CellOutcome {
    Profile(RobustProfile),
    Fault {
        /// True when the cell was cancelled by the supervision watchdog.
        timeout: bool,
        /// Milliseconds of silence before cancellation (0 if not a timeout).
        waited_ms: u64,
        error: String,
    },
}

/// One journaled line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum JournalRecord {
    Meta(BuildMeta),
    /// Per-model analysis result, written once per model so a fully
    /// journaled model skips even the (cached) analysis on resume.
    Model {
        model: String,
        model_hash: u64,
        profile: CnnProfile,
    },
    Cell {
        model: String,
        model_hash: u64,
        device: String,
        outcome: CellOutcome,
    },
}

/// Journal failures surfaced to the CLI.
#[derive(Debug)]
pub enum JournalError {
    Io(std::io::Error),
    /// The journal was written under a different build configuration (or
    /// schema); resuming would mix measurement protocols.
    ConfigMismatch {
        detail: String,
    },
    Serialize(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::ConfigMismatch { detail } => {
                write!(f, "journal configuration mismatch: {detail}")
            }
            JournalError::Serialize(e) => write!(f, "journal serialization error: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Everything recovered from an existing journal.
#[derive(Debug, Default)]
pub struct Replay {
    pub meta: Option<BuildMeta>,
    /// Per-model analysis results, keyed by model content hash.
    pub profiles: HashMap<u64, CnnProfile>,
    /// Per-cell outcomes, keyed by (model content hash, device name).
    pub cells: HashMap<(u64, String), CellOutcome>,
    /// Valid records replayed (including meta/model records).
    pub records: u64,
    /// Segments quarantined to `.corrupt` during this replay.
    pub corrupt_segments: u64,
}

impl Replay {
    /// Outcome for one cell, if journaled.
    pub fn cell(&self, model_hash: u64, device: &str) -> Option<&CellOutcome> {
        self.cells.get(&(model_hash, device.to_string()))
    }
}

/// FNV-1a, the same envelope hash as [`crate::cache`].
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn segment_name(index: u32) -> String {
    format!("segment-{index:05}.jsonl")
}

/// Parse `segment-NNNNN.jsonl` back to its index.
fn segment_index(name: &str) -> Option<u32> {
    name.strip_prefix("segment-")?
        .strip_suffix(".jsonl")?
        .parse()
        .ok()
}

/// Sorted (index, path) list of live segments in `dir`.
fn list_segments(dir: &Path) -> std::io::Result<Vec<(u32, PathBuf)>> {
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(idx) = entry.file_name().to_str().and_then(segment_index) {
            segs.push((idx, entry.path()));
        }
    }
    segs.sort_by_key(|(i, _)| *i);
    Ok(segs)
}

fn quarantine(path: &Path) -> std::io::Result<()> {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".corrupt");
    fs::rename(path, path.with_file_name(name))
}

/// Decode one journal line (`{checksum:016x} {json}`); `None` on any
/// corruption (torn write, flipped bit, bad JSON).
fn decode_line(line: &str) -> Option<JournalRecord> {
    let (hash_s, json) = line.split_once(' ')?;
    let stored = u64::from_str_radix(hash_s, 16).ok()?;
    if fnv1a(json.as_bytes()) != stored {
        return None;
    }
    serde_json::from_str(json).ok()
}

fn encode_line(record: &JournalRecord) -> Result<String, JournalError> {
    let json =
        serde_json::to_string(record).map_err(|e| JournalError::Serialize(format!("{e:?}")))?;
    debug_assert!(!json.contains('\n'), "journal records must be single-line");
    Ok(format!("{:016x} {json}\n", fnv1a(json.as_bytes())))
}

struct Writer {
    file: File,
    seg_index: u32,
    records_in_segment: u32,
}

/// Append-only, checksummed, segmented WAL of corpus-build cells.
pub struct Journal {
    dir: PathBuf,
    inner: Mutex<Writer>,
}

impl Journal {
    /// Open (and, with `resume`, replay) the journal in `dir`.
    ///
    /// Fresh opens (`resume == false`) wipe any live segments — the caller
    /// explicitly asked to start over — while `.corrupt` quarantines from
    /// earlier incidents are left for debugging. Resume opens replay every
    /// live segment in order, quarantining from the first corrupt line
    /// onward, and refuse to proceed if the journaled [`BuildMeta`]
    /// differs from `meta`. Either way the writer starts a *new* segment
    /// (one past the highest survivor) and, if replay recovered no meta,
    /// appends `meta` as the first record.
    pub fn open(
        dir: &Path,
        meta: &BuildMeta,
        resume: bool,
    ) -> Result<(Journal, Replay), JournalError> {
        fs::create_dir_all(dir)?;
        let mut replay = Replay::default();
        let mut next_index = 0u32;

        if resume {
            replay = replay_segments(dir)?;
            if let Some(found) = &replay.meta {
                if found != meta {
                    return Err(JournalError::ConfigMismatch {
                        detail: format!("journaled {found:?} vs requested {meta:?}"),
                    });
                }
            }
            next_index = list_segments(dir)?.last().map(|(i, _)| i + 1).unwrap_or(0);
        } else {
            for (_, path) in list_segments(dir)? {
                fs::remove_file(&path)?;
            }
        }

        let path = dir.join(segment_name(next_index));
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let journal = Journal {
            dir: dir.to_path_buf(),
            inner: Mutex::new(Writer {
                file,
                seg_index: next_index,
                records_in_segment: 0,
            }),
        };
        if replay.meta.is_none() {
            journal.append(&JournalRecord::Meta(meta.clone()))?;
        }
        Ok((journal, replay))
    }

    /// Directory this journal writes to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Journal one model's analysis result.
    pub fn append_model(
        &self,
        model: &str,
        model_hash: u64,
        profile: &CnnProfile,
    ) -> Result<(), JournalError> {
        self.append(&JournalRecord::Model {
            model: model.to_string(),
            model_hash,
            profile: profile.clone(),
        })
    }

    /// Journal one completed cell.
    pub fn append_cell(
        &self,
        model: &str,
        model_hash: u64,
        device: &str,
        outcome: &CellOutcome,
    ) -> Result<(), JournalError> {
        self.append(&JournalRecord::Cell {
            model: model.to_string(),
            model_hash,
            device: device.to_string(),
            outcome: outcome.clone(),
        })
    }

    fn append(&self, record: &JournalRecord) -> Result<(), JournalError> {
        let line = encode_line(record)?;
        let mut w = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if w.records_in_segment >= SEGMENT_RECORDS {
            let next = w.seg_index + 1;
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.dir.join(segment_name(next)))?;
            w.file = file;
            w.seg_index = next;
            w.records_in_segment = 0;
        }
        // one write_all + flush per record: after this returns, the record
        // is in the page cache, which survives a SIGKILL of this process
        // (durability against machine power loss is out of scope)
        w.file.write_all(line.as_bytes())?;
        w.file.flush()?;
        w.records_in_segment += 1;
        JOURNAL_APPENDS.inc();
        Ok(())
    }
}

/// Replay all live segments in `dir`, quarantining from the first corrupt
/// line onward.
fn replay_segments(dir: &Path) -> Result<Replay, JournalError> {
    let mut replay = Replay::default();
    let segments = list_segments(dir)?;
    let mut poisoned_from: Option<usize> = None;

    for (pos, (_, path)) in segments.iter().enumerate() {
        let text = fs::read_to_string(path)?;
        let mut valid_prefix = String::new();
        let mut bad = false;
        for line in text.lines() {
            match decode_line(line) {
                Some(record) => {
                    apply_record(&mut replay, record);
                    valid_prefix.push_str(line);
                    valid_prefix.push('\n');
                }
                None => {
                    bad = true;
                    break;
                }
            }
        }
        if bad {
            eprintln!(
                "warning: journal segment {} has a corrupt tail; quarantining as .corrupt",
                path.display()
            );
            quarantine(path)?;
            JOURNAL_CORRUPT_SEGMENTS.inc();
            replay.corrupt_segments += 1;
            if !valid_prefix.is_empty() {
                // keep the valid prefix under the original name, written
                // crash-safely (temp + atomic rename) like crate::cache
                let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
                tmp_name.push(format!(".tmp.{}", std::process::id()));
                let tmp = path.with_file_name(tmp_name);
                fs::write(&tmp, valid_prefix)?;
                fs::rename(&tmp, path)?;
            }
            poisoned_from = Some(pos + 1);
            break;
        }
    }

    // segments after a corrupt one are untrustworthy wholesale: the writer
    // only opens segment N+1 after N is complete, so a torn segment N with
    // a live N+1 means files were tampered with or interleaved
    if let Some(from) = poisoned_from {
        for (_, path) in &segments[from..] {
            quarantine(path)?;
            JOURNAL_CORRUPT_SEGMENTS.inc();
            replay.corrupt_segments += 1;
        }
    }
    Ok(replay)
}

fn apply_record(replay: &mut Replay, record: JournalRecord) {
    replay.records += 1;
    match record {
        JournalRecord::Meta(m) => {
            // first meta wins; later ones (same config, re-appended after
            // an empty resume) are redundant by construction
            if replay.meta.is_none() {
                replay.meta = Some(m);
            }
        }
        JournalRecord::Model {
            model_hash,
            profile,
            ..
        } => {
            replay.profiles.insert(model_hash, profile);
        }
        JournalRecord::Cell {
            model_hash,
            device,
            outcome,
            ..
        } => {
            replay.cells.insert((model_hash, device), outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cnnperf-journal-test-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn meta() -> BuildMeta {
        BuildMeta {
            schema: JOURNAL_SCHEMA,
            sm_target: "sm_61".into(),
            runs: 3,
            retry: RetryPolicy::no_backoff(),
            faults: FaultProfile::none(),
            strict: false,
        }
    }

    fn fault(err: &str) -> CellOutcome {
        CellOutcome::Fault {
            timeout: false,
            waited_ms: 0,
            error: err.to_string(),
        }
    }

    #[test]
    fn append_then_replay_roundtrips() {
        let dir = tmp_dir("roundtrip");
        let (j, replay) = Journal::open(&dir, &meta(), false).unwrap();
        assert_eq!(replay.records, 0);
        j.append_cell("alexnet", 7, "GTX 1080 Ti", &fault("boom"))
            .unwrap();
        j.append_cell("alexnet", 7, "V100S", &fault("bang"))
            .unwrap();
        drop(j);

        let (_j2, replay) = Journal::open(&dir, &meta(), true).unwrap();
        assert_eq!(replay.meta, Some(meta()));
        assert_eq!(replay.cells.len(), 2);
        assert!(matches!(
            replay.cell(7, "V100S"),
            Some(CellOutcome::Fault { error, .. }) if error == "bang"
        ));
        assert_eq!(replay.corrupt_segments, 0);
    }

    #[test]
    fn fresh_open_wipes_live_segments() {
        let dir = tmp_dir("wipe");
        let (j, _) = Journal::open(&dir, &meta(), false).unwrap();
        j.append_cell("m", 1, "d", &fault("x")).unwrap();
        drop(j);
        let (_j, replay) = Journal::open(&dir, &meta(), false).unwrap();
        assert_eq!(replay.records, 0, "fresh open must not replay");
        let (_j, replay) = Journal::open(&dir, &meta(), true).unwrap();
        assert!(replay.cells.is_empty(), "wiped cells must not resurface");
    }

    #[test]
    fn config_mismatch_is_refused() {
        let dir = tmp_dir("mismatch");
        let (j, _) = Journal::open(&dir, &meta(), false).unwrap();
        drop(j);
        let other = BuildMeta { runs: 99, ..meta() };
        match Journal::open(&dir, &other, true) {
            Err(JournalError::ConfigMismatch { .. }) => {}
            other => panic!(
                "expected config mismatch, got {other:?}",
                other = other.err()
            ),
        }
    }

    #[test]
    fn segments_rotate() {
        let dir = tmp_dir("rotate");
        let (j, _) = Journal::open(&dir, &meta(), false).unwrap();
        for i in 0..(SEGMENT_RECORDS + 5) {
            j.append_cell("m", i as u64, "d", &fault("x")).unwrap();
        }
        drop(j);
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 2, "expected rotation, got {segs:?}");
        let (_j, replay) = Journal::open(&dir, &meta(), true).unwrap();
        assert_eq!(replay.cells.len(), (SEGMENT_RECORDS + 5) as usize);
    }

    #[test]
    fn torn_tail_is_quarantined_and_prefix_survives() {
        let dir = tmp_dir("torn");
        let (j, _) = Journal::open(&dir, &meta(), false).unwrap();
        j.append_cell("m", 1, "d1", &fault("a")).unwrap();
        j.append_cell("m", 2, "d2", &fault("b")).unwrap();
        drop(j);
        // tear the last record in half, as a SIGKILL mid-write would
        let path = dir.join(segment_name(0));
        let text = fs::read_to_string(&path).unwrap();
        let cut = text.trim_end().rfind('\n').unwrap() + 20;
        fs::write(&path, &text[..cut]).unwrap();

        let (_j, replay) = Journal::open(&dir, &meta(), true).unwrap();
        assert_eq!(replay.corrupt_segments, 1);
        assert!(replay.cell(1, "d1").is_some(), "valid prefix must survive");
        assert!(
            replay.cell(2, "d2").is_none(),
            "torn record must be dropped"
        );
        assert!(
            dir.join(format!("{}.corrupt", segment_name(0))).exists(),
            "evidence must be preserved"
        );
        // and the repaired segment replays cleanly a second time
        let (_j, replay2) = Journal::open(&dir, &meta(), true).unwrap();
        assert_eq!(replay2.corrupt_segments, 0);
        assert!(replay2.cell(1, "d1").is_some());
    }

    #[test]
    fn bitflip_is_detected_by_checksum() {
        let dir = tmp_dir("bitflip");
        let (j, _) = Journal::open(&dir, &meta(), false).unwrap();
        j.append_cell("m", 1, "d", &fault("a")).unwrap();
        drop(j);
        let path = dir.join(segment_name(0));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() - 10;
        bytes[mid] ^= 0x40; // flip a bit inside the last record's payload
        fs::write(&path, bytes).unwrap();
        let (_j, replay) = Journal::open(&dir, &meta(), true).unwrap();
        assert_eq!(replay.corrupt_segments, 1);
        assert!(replay.cell(1, "d").is_none());
    }

    #[test]
    fn later_segments_after_corruption_are_quarantined_wholesale() {
        let dir = tmp_dir("wholesale");
        let (j, _) = Journal::open(&dir, &meta(), false).unwrap();
        for i in 0..(SEGMENT_RECORDS + 2) {
            j.append_cell("m", i as u64, "d", &fault("x")).unwrap();
        }
        drop(j);
        // corrupt the FIRST segment: everything after it must go too
        let path = dir.join(segment_name(0));
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        let (_j, replay) = Journal::open(&dir, &meta(), true).unwrap();
        assert!(replay.corrupt_segments >= 2, "{}", replay.corrupt_segments);
        assert!(
            replay.cells.len() < (SEGMENT_RECORDS + 2) as usize,
            "post-corruption segments must not be replayed"
        );
    }
}
