//! Feature extraction: assemble the paper's observation vector
//! `d = (y, p, c_1..c_m, t)` — executed PTX instructions `p`, GPGPU
//! architectural features `c`, trainable parameters `t` (Eq. 1).

use cnn_ir::{GraphError, ModelGraph, ModelSummary};
use gpu_sim::{DeviceSpec, ProfileFault};
use ptx::kernel::LaunchPlan;
use ptx_analysis::{CountingReport, ExecError, PlanCount};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Everything the static + dynamic analysis extracts from one CNN
/// (GPU-independent; computed once per model).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CnnProfile {
    pub name: String,
    /// Total executed PTX instructions (thread-level), the paper's `p`.
    pub ptx_instructions: u64,
    /// Trainable parameters, the paper's `t`.
    pub trainable_params: u64,
    /// Extra static-analysis outputs (the paper's future-work features).
    pub macs: u64,
    pub flops: u64,
    pub neurons: u64,
    pub num_launches: usize,
    /// Seconds spent in the dynamic code analysis (`t_dca` of Table IV).
    pub dca_seconds: f64,
}

/// Unified pipeline failure: everything that can go wrong between a model
/// graph and a corpus row. The [`transient`](ProfileError::transient) /
/// [`permanent`](ProfileError::permanent) split is what drives retry
/// decisions — transient failures are worth another attempt, permanent
/// ones fail the cell (or, in strict mode, the whole build).
#[derive(Debug)]
pub enum ProfileError {
    Graph(GraphError),
    Exec(ExecError),
    /// Measurement-layer failure from the robust profiling protocol.
    Fault(ProfileFault),
    /// The build journal could not be written; crash-safety is gone, so
    /// the build aborts rather than continuing unjournaled.
    Journal(String),
}

impl ProfileError {
    /// Retryable: a repeat attempt may succeed (injected transient
    /// failures and hung-run kills). Analysis and simulation errors are
    /// deterministic and therefore permanent.
    pub fn transient(&self) -> bool {
        match self {
            ProfileError::Graph(_) | ProfileError::Exec(_) | ProfileError::Journal(_) => false,
            ProfileError::Fault(f) => f.transient(),
        }
    }

    pub fn permanent(&self) -> bool {
        !self.transient()
    }
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Graph(e) => write!(f, "graph error: {e}"),
            ProfileError::Exec(e) => write!(f, "analysis error: {e}"),
            ProfileError::Fault(e) => write!(f, "profiling fault: {e}"),
            ProfileError::Journal(e) => write!(f, "journal error: {e}"),
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<GraphError> for ProfileError {
    fn from(e: GraphError) -> Self {
        ProfileError::Graph(e)
    }
}

impl From<ExecError> for ProfileError {
    fn from(e: ExecError) -> Self {
        ProfileError::Exec(e)
    }
}

impl From<ProfileFault> for ProfileError {
    fn from(e: ProfileFault) -> Self {
        ProfileError::Fault(e)
    }
}

/// Run the full static + dynamic analysis for one model: Table I values
/// from the static analyzer, the executed-instruction count from the
/// slicing executor. Also returns the lowered plan and counts for reuse.
pub fn profile_model(
    model: &ModelGraph,
) -> Result<(CnnProfile, LaunchPlan, PlanCount, ModelSummary), ProfileError> {
    profile_model_budgeted(model, &ptx_analysis::ExecBudget::default())
}

/// [`profile_model`] under an execution budget: the budget's cancellation
/// token and step fuel bound the dynamic code analysis, so a
/// deadline-driven caller (the regressor tier of the estimation engine)
/// can abandon a DCA that will not finish in time.
pub fn profile_model_budgeted(
    model: &ModelGraph,
    budget: &ptx_analysis::ExecBudget,
) -> Result<(CnnProfile, LaunchPlan, PlanCount, ModelSummary), ProfileError> {
    profile_model_with_target(model, DEFAULT_SM_TARGET, budget)
}

/// Default PTX lowering target for device-independent profiling (the
/// instruction count is target-independent; the target only stamps the
/// emitted module).
pub const DEFAULT_SM_TARGET: &str = "sm_61";

/// [`profile_model_budgeted`] with an explicit `sm_*` lowering target, so
/// device-specific callers (the estimation engine's detailed tier) get a
/// plan stamped for the request's device instead of a hardcoded one.
pub fn profile_model_with_target(
    model: &ModelGraph,
    target: &str,
    budget: &ptx_analysis::ExecBudget,
) -> Result<(CnnProfile, LaunchPlan, PlanCount, ModelSummary), ProfileError> {
    profile_model_report(model, target, budget).map(|(p, plan, c, s, _)| (p, plan, c, s))
}

/// [`profile_model_with_target`] plus the [`CountingReport`] describing
/// which counting tier the DCA ran on (compiled trip-count polynomials vs
/// the dense interpreter) — the provenance the analysis cache stores
/// alongside each [`AnalyzedModel`](crate::analysis_cache::AnalyzedModel).
pub fn profile_model_report(
    model: &ModelGraph,
    target: &str,
    budget: &ptx_analysis::ExecBudget,
) -> Result<
    (
        CnnProfile,
        LaunchPlan,
        PlanCount,
        ModelSummary,
        CountingReport,
    ),
    ProfileError,
> {
    let summary = cnn_ir::analyze(model)?;
    let t0 = std::time::Instant::now();
    let plan = ptx_codegen::lower(model, target)?;
    let (counts, counting) = ptx_analysis::count_plan_report_budgeted(
        &plan,
        true,
        budget,
        ptx_analysis::default_count_mode(),
    )?;
    let dca_seconds = t0.elapsed().as_secs_f64();
    let profile = CnnProfile {
        name: model.name().to_string(),
        ptx_instructions: counts.thread_instructions,
        trainable_params: summary.trainable_params,
        macs: summary.macs,
        flops: summary.flops,
        neurons: summary.neurons,
        num_launches: plan.launches.len(),
        dca_seconds,
    };
    Ok((profile, plan, counts, summary, counting))
}

/// Names of the full feature vector, in order: CNN features then GPU
/// features.
pub fn feature_names() -> Vec<String> {
    let mut names = vec![
        "ptx_instructions".to_string(),
        "trainable_params".to_string(),
    ];
    for (n, _) in gpu_sim::specs::gtx_1080_ti().features() {
        names.push(n.to_string());
    }
    names
}

/// Assemble one feature row for (CNN, GPU).
pub fn feature_row(profile: &CnnProfile, dev: &DeviceSpec) -> Vec<f64> {
    let mut row = vec![
        profile.ptx_instructions as f64,
        profile.trainable_params as f64,
    ];
    row.extend(dev.features().iter().map(|(_, v)| *v));
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_vector_matches_names() {
        let model = cnn_ir::zoo::build("alexnet").unwrap();
        let (profile, _, _, _) = profile_model(&model).unwrap();
        let dev = gpu_sim::specs::gtx_1080_ti();
        let row = feature_row(&profile, &dev);
        assert_eq!(row.len(), feature_names().len());
        assert_eq!(row[0], profile.ptx_instructions as f64);
        assert_eq!(row[1], 60_965_224.0);
    }

    #[test]
    fn profile_is_gpu_independent() {
        let model = cnn_ir::zoo::build("mobilenet").unwrap();
        let (a, _, _, _) = profile_model(&model).unwrap();
        let (b, _, _, _) = profile_model(&model).unwrap();
        assert_eq!(a.ptx_instructions, b.ptx_instructions);
    }

    #[test]
    fn instruction_count_tracks_model_size() {
        let small = profile_model(&cnn_ir::zoo::build("mobilenet").unwrap())
            .unwrap()
            .0;
        let big = profile_model(&cnn_ir::zoo::build("vgg16").unwrap())
            .unwrap()
            .0;
        assert!(big.ptx_instructions > 3 * small.ptx_instructions);
    }
}
