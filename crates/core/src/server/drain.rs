//! Graceful-drain state machine for the estimation server.
//!
//! ```text
//!            SIGTERM / SIGINT / {"op":"drain"} / stdin EOF
//! Running ────────────────────────────────────────────────▶ Draining
//!    │  admit + serve                 stop admitting; finish queued +   │
//!    │                                in-flight work within the drain   │
//!    │                                deadline                          │
//!    └──────────────◀ (never re-enters Running) ◀──────────────────────┘
//!                                                                  │
//!                queues empty, workers parked  ──or──  drain deadline hit
//!                (leftover waiters flushed with a typed outcome)
//!                                                                  ▼
//!                                                               Stopped
//! ```
//!
//! The controller is a cheap shared handle: the accept loop polls it to
//! stop admitting connections, sessions poll it to reject new requests
//! with a typed `draining` error, and the scheduler uses it to decide
//! when workers may park. Transitions are one-way — a draining server
//! never resumes — which keeps every observer's check a single relaxed
//! atomic load.
//!
//! SIGTERM/SIGINT are wired through a process-global flag
//! ([`install_signal_drain`] / [`signal_drain_requested`]): the handler
//! only stores an `AtomicBool` (async-signal-safe); the serve loop polls
//! the flag and performs the actual transition outside signal context.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;

static DRAINS_REQUESTED: obs::LazyCounter = obs::LazyCounter::new("server.drain.requests");

/// Lifecycle phase of the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainState {
    /// Admitting and serving.
    Running,
    /// Not admitting; finishing in-flight work.
    Draining,
    /// Fully stopped; every admitted request has received its outcome.
    Stopped,
}

impl DrainState {
    pub fn name(self) -> &'static str {
        match self {
            DrainState::Running => "running",
            DrainState::Draining => "draining",
            DrainState::Stopped => "stopped",
        }
    }
}

/// Shared drain handle. Cloning shares state.
#[derive(Debug, Clone, Default)]
pub struct DrainController {
    state: Arc<AtomicU8>,
}

impl DrainController {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn state(&self) -> DrainState {
        match self.state.load(Ordering::Relaxed) {
            0 => DrainState::Running,
            1 => DrainState::Draining,
            _ => DrainState::Stopped,
        }
    }

    /// Is admission closed (draining or stopped)?
    pub fn draining(&self) -> bool {
        self.state.load(Ordering::Relaxed) != 0
    }

    /// Enter `Draining`. Idempotent; returns `true` on the first call
    /// (the one that actually transitioned).
    pub fn request_drain(&self) -> bool {
        let first = self
            .state
            .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        if first {
            DRAINS_REQUESTED.inc();
        }
        first
    }

    /// Enter `Stopped` (only meaningful after `Draining`).
    pub fn mark_stopped(&self) {
        self.state.store(2, Ordering::SeqCst);
    }
}

/// Set by the signal handler, polled by the serve loop.
static SIGNAL_DRAIN: AtomicBool = AtomicBool::new(false);

/// Has a drain-requesting signal arrived since process start?
pub fn signal_drain_requested() -> bool {
    SIGNAL_DRAIN.load(Ordering::SeqCst)
}

/// Test hook: simulate signal delivery without raising a real signal.
pub fn trigger_signal_drain() {
    SIGNAL_DRAIN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
extern "C" fn drain_signal_handler(_signum: i32) {
    // async-signal-safe: a single atomic store, nothing else
    SIGNAL_DRAIN.store(true, Ordering::SeqCst);
}

/// Install SIGTERM/SIGINT handlers that arm [`signal_drain_requested`].
/// Uses libc's `signal` directly (always linked on unix) so the workspace
/// stays free of external crates. No-op on non-unix targets.
pub fn install_signal_drain() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, drain_signal_handler);
            signal(SIGINT, drain_signal_handler);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_are_one_way_and_idempotent() {
        let d = DrainController::new();
        assert_eq!(d.state(), DrainState::Running);
        assert!(!d.draining());
        assert!(d.request_drain(), "first request transitions");
        assert!(!d.request_drain(), "second request is a no-op");
        assert_eq!(d.state(), DrainState::Draining);
        assert!(d.draining());
        d.mark_stopped();
        assert_eq!(d.state(), DrainState::Stopped);
        assert!(!d.request_drain(), "stopped never re-enters draining");
        assert_eq!(d.state(), DrainState::Stopped);
    }

    #[test]
    fn clones_share_state() {
        let a = DrainController::new();
        let b = a.clone();
        a.request_drain();
        assert!(b.draining());
    }
}
