//! Sharded worker pool with request coalescing, per-class admission
//! control, bounded retry, and stale-while-revalidate.
//!
//! # Sharding and coalescing
//!
//! Requests are routed to a shard by FNV hash of their `(model, device)`
//! key, so every request for one key lands on the same worker. Within a
//! shard, concurrent requests for the same key **coalesce**: the first
//! becomes a job, later ones append themselves as waiters (even while
//! the job is already running) and all of them receive the one result —
//! the engine computes once, the [`crate::analysis_cache`] sees one
//! miss, and every waiter's `result` payload is byte-identical.
//!
//! # Admission control
//!
//! Each shard keeps one FIFO queue per [`QosClass`], drained in priority
//! order. A *new* job is admitted only while its class queue is under
//! the [`QosPolicy::queue_quota`]; beyond it the request is shed with a
//! typed `overloaded` error — best-effort quotas are the smallest, so
//! under a storm best-effort sheds first while interactive keeps
//! flowing. Joining an existing job is always admitted (a coalesced
//! waiter adds no work). A queued job is promoted to a higher-priority
//! queue when a more important waiter joins it.
//!
//! # Retry and stale-while-revalidate
//!
//! An exhausted outcome whose tier failures are all transient (timeouts,
//! contained panics, open breakers — never classified errors like an
//! unknown model) is retried up to [`ServerConfig::max_retries`] times
//! with deterministic jittered backoff. A request served from the stale
//! cache additionally enqueues an internal best-effort *revalidation*
//! job for the same key, which re-runs the live tiers and refreshes the
//! cache — degraded answers are served now and healed in the background.

use super::drain::DrainController;
use super::protocol::{render_error, render_result, result_body, EstimateRequest};
use super::qos::{QosClass, QosPolicy};
use super::ServerConfig;
use crate::engine::{EstimateOutcome, OutcomeKind, ResilientEngine, Tier, TierFailure};
use crate::lifecycle::{MeasurementLog, PredictorSlot};
use crate::model::PerformancePredictor;
use crate::pipeline::Corpus;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Take a mutex even when a panicking thread poisoned it. Shard state
/// stays structurally consistent across panics (jobs/queues are mutated
/// in complete steps before any engine work runs), so recovering the
/// inner value keeps the shard serving instead of cascading one contained
/// panic into a wedged session for every later client.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Valid estimate frames reaching the scheduler;
/// `requests == admitted + shed + rejected.draining`.
static SERVER_REQUESTS: obs::LazyCounter = obs::LazyCounter::new("server.requests");
static SERVER_ADMITTED: obs::LazyCounter = obs::LazyCounter::new("server.admitted");
/// Admission-control drops, total and per class (`server.shed == Σ class`).
static SERVER_SHED: obs::LazyCounter = obs::LazyCounter::new("server.shed");
/// Requests refused because the server is draining.
static SERVER_REJECTED_DRAINING: obs::LazyCounter =
    obs::LazyCounter::new("server.rejected.draining");
/// Admitted requests that joined an existing job instead of creating one.
static SERVER_COALESCED: obs::LazyCounter = obs::LazyCounter::new("server.coalesced");
/// Admitted requests that received a computed outcome.
static SERVER_COMPLETED: obs::LazyCounter = obs::LazyCounter::new("server.completed");
/// Admitted requests resolved during the drain phase (completed or
/// flushed); `drained <= completed + drain.flushed`.
static SERVER_DRAINED: obs::LazyCounter = obs::LazyCounter::new("server.drained");
/// Admitted requests flushed with a typed `drain-deadline` outcome
/// because the drain deadline expired before their job finished.
static SERVER_DRAIN_FLUSHED: obs::LazyCounter = obs::LazyCounter::new("server.drain.flushed");
/// Transient-failure retries performed by workers.
static SERVER_RETRIES: obs::LazyCounter = obs::LazyCounter::new("server.retries");
/// Stale-while-revalidate refresh jobs enqueued.
static SERVER_REVALIDATIONS: obs::LazyCounter = obs::LazyCounter::new("server.revalidations");

fn shed_count(class: QosClass) {
    SERVER_SHED.inc();
    obs::global()
        .counter(&format!("server.shed.{}", class.name()))
        .inc();
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

type JobKey = (String, String);

/// One admitted request waiting for its job's result.
struct Waiter {
    id: String,
    class: QosClass,
    tx: Sender<String>,
    enqueued: Instant,
}

/// One unit of engine work; many waiters may share it.
struct Job {
    /// Highest-priority class among the waiters (decides the queue).
    class: QosClass,
    /// Effective wall-clock budget: the tightest of the waiters'
    /// per-request overrides and class deadlines.
    deadline_ms: u64,
    waiters: Vec<Waiter>,
    running: bool,
    /// Internal stale-while-revalidate refresh: live tiers only, and no
    /// waiters unless a real request coalesced onto it mid-queue.
    revalidate: bool,
}

struct ShardState {
    /// Per-class FIFO of queued (not yet running) job keys.
    queues: [VecDeque<JobKey>; 3],
    /// Every queued or running job, by key. A key present here is what
    /// makes coalescing possible.
    jobs: HashMap<JobKey, Job>,
    draining: bool,
}

impl ShardState {
    fn new() -> Self {
        ShardState {
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            jobs: HashMap::new(),
            draining: false,
        }
    }

    /// Pop the highest-priority queued job and mark it running.
    fn pop_next(&mut self) -> Option<JobKey> {
        for q in self.queues.iter_mut() {
            if let Some(key) = q.pop_front() {
                if let Some(job) = self.jobs.get_mut(&key) {
                    job.running = true;
                }
                return Some(key);
            }
        }
        None
    }

    fn queued(&self, class: QosClass) -> usize {
        self.queues[class.priority()].len()
    }

    /// Enqueue an internal best-effort revalidation job for `key`, if the
    /// key is idle and the best-effort queue has room. Revalidation is
    /// opportunistic: when crowded out it is silently skipped.
    fn try_enqueue_revalidate(&mut self, key: &JobKey, policy: &QosPolicy) {
        if self.draining
            || self.jobs.contains_key(key)
            || self.queued(QosClass::BestEffort) >= policy.queue_quota(QosClass::BestEffort)
        {
            return;
        }
        self.jobs.insert(
            key.clone(),
            Job {
                class: QosClass::BestEffort,
                deadline_ms: policy.deadline_ms(QosClass::BestEffort),
                waiters: Vec::new(),
                running: false,
                revalidate: true,
            },
        );
        self.queues[QosClass::BestEffort.priority()].push_back(key.clone());
        SERVER_REVALIDATIONS.inc();
    }
}

struct Shard {
    state: Mutex<ShardState>,
    cv: Condvar,
}

/// Why a request was not admitted.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The class queue quota is full; the request was shed.
    Shed { class: QosClass },
    /// The server is draining and admits nothing new.
    Draining,
}

impl SubmitError {
    /// The typed error frame this rejection renders as.
    pub fn to_frame(&self, id: &str) -> String {
        match self {
            SubmitError::Shed { class } => render_error(
                Some(id),
                "overloaded",
                &format!("{class} queue is at its quota; request shed"),
            ),
            SubmitError::Draining => {
                render_error(Some(id), "draining", "server is draining; not admitting")
            }
        }
    }
}

/// Outcome of a graceful drain.
#[derive(Debug, Clone, PartialEq)]
pub struct DrainReport {
    /// Waiters flushed with a typed `drain-deadline` outcome.
    pub flushed: usize,
    /// Whether the drain deadline expired before the queues emptied.
    pub forced: bool,
    /// Wall time the drain took.
    pub elapsed: Duration,
}

/// The sharded worker pool. Create with [`Scheduler::start`], feed with
/// [`Scheduler::submit`], stop with [`Scheduler::drain`].
pub struct Scheduler {
    shards: Vec<Arc<Shard>>,
    policy: QosPolicy,
    drain: DrainController,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Spawn the worker pool: one engine-owning worker thread per shard.
    /// `predictor` and `corpus` arm every shard's regressor and stale
    /// cache tiers.
    pub fn start(
        cfg: &ServerConfig,
        predictor: Option<Arc<PerformancePredictor>>,
        corpus: Option<Arc<Corpus>>,
    ) -> Arc<Scheduler> {
        let slot = Arc::new(PredictorSlot::new());
        if let Some(p) = predictor {
            slot.install(p);
        }
        Self::start_with_slot(cfg, slot, corpus, None)
    }

    /// [`start`](Self::start) with an externally owned predictor slot and
    /// an optional ground-truth log — the lifecycle-enabled form: the
    /// trainer promotes into `slot` (all shards see it atomically) and
    /// shards publish live-tier measurements into `ground_truth`.
    pub fn start_with_slot(
        cfg: &ServerConfig,
        slot: Arc<PredictorSlot>,
        corpus: Option<Arc<Corpus>>,
        ground_truth: Option<Arc<MeasurementLog>>,
    ) -> Arc<Scheduler> {
        let shard_count = cfg.workers.max(1);
        let shards: Vec<Arc<Shard>> = (0..shard_count)
            .map(|_| {
                Arc::new(Shard {
                    state: Mutex::new(ShardState::new()),
                    cv: Condvar::new(),
                })
            })
            .collect();
        let scheduler = Arc::new(Scheduler {
            shards: shards.clone(),
            policy: cfg.policy.clone(),
            drain: cfg.drain.clone(),
            workers: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(shard_count);
        for (i, shard) in shards.into_iter().enumerate() {
            let cfg = cfg.clone();
            let slot = Arc::clone(&slot);
            let corpus = corpus.clone();
            let ground_truth = ground_truth.clone();
            let handle = std::thread::Builder::new()
                .name(format!("serve-shard-{i}"))
                .spawn(move || worker_loop(shard, cfg, slot, corpus, ground_truth))
                .expect("spawn scheduler worker");
            handles.push(handle);
        }
        *lock_recover(&scheduler.workers) = handles;
        scheduler
    }

    fn shard_for(&self, key: &JobKey) -> &Arc<Shard> {
        let mut bytes = key.0.as_bytes().to_vec();
        bytes.push(0);
        bytes.extend_from_slice(key.1.as_bytes());
        let idx = (fnv1a(&bytes) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Admit one request. On success the result frame will eventually
    /// arrive on `tx` (exactly one frame per admitted request, even
    /// through a drain). Rejections return immediately with a typed
    /// [`SubmitError`].
    pub fn submit(&self, req: EstimateRequest, tx: Sender<String>) -> Result<(), SubmitError> {
        SERVER_REQUESTS.inc();
        if self.drain.draining() {
            SERVER_REJECTED_DRAINING.inc();
            return Err(SubmitError::Draining);
        }
        let key = (req.model.clone(), req.device.clone());
        let shard = self.shard_for(&key);
        let mut st = lock_recover(&shard.state);
        if st.draining {
            SERVER_REJECTED_DRAINING.inc();
            return Err(SubmitError::Draining);
        }
        let effective_deadline = req
            .deadline_ms
            .unwrap_or_else(|| self.policy.deadline_ms(req.qos));
        let waiter = Waiter {
            id: req.id,
            class: req.qos,
            tx,
            enqueued: Instant::now(),
        };
        if let Some(job) = st.jobs.get_mut(&key) {
            // Coalesce: join the existing job. A queued job adopting a
            // more important waiter moves to that class's queue; a queued
            // revalidation job gains a real waiter and stops being
            // internal. Running jobs are left as popped — their result
            // still fans out to every waiter present at completion.
            let old_class = job.class;
            let promote =
                !job.running && (req.qos.priority() < old_class.priority() || job.revalidate);
            if promote {
                job.class = old_class.max_priority(req.qos);
                job.revalidate = false;
            }
            if !job.running {
                // tightest budget among the coalesced waiters wins
                job.deadline_ms = job.deadline_ms.min(effective_deadline);
            }
            job.waiters.push(waiter);
            let new_class = job.class;
            if promote && new_class != old_class {
                let old_q = &mut st.queues[old_class.priority()];
                if let Some(pos) = old_q.iter().position(|k| *k == key) {
                    old_q.remove(pos);
                    st.queues[new_class.priority()].push_back(key);
                }
            }
            SERVER_ADMITTED.inc();
            SERVER_COALESCED.inc();
            return Ok(());
        }
        if st.queued(req.qos) >= self.policy.queue_quota(req.qos) {
            shed_count(req.qos);
            return Err(SubmitError::Shed { class: req.qos });
        }
        st.jobs.insert(
            key.clone(),
            Job {
                class: req.qos,
                deadline_ms: effective_deadline,
                waiters: vec![waiter],
                running: false,
                revalidate: false,
            },
        );
        st.queues[req.qos.priority()].push_back(key);
        SERVER_ADMITTED.inc();
        drop(st);
        shard.cv.notify_all();
        Ok(())
    }

    /// Total queued (not yet running) jobs across all shards.
    pub fn queue_depth(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let st = lock_recover(&s.state);
                st.queues.iter().map(|q| q.len()).sum::<usize>()
            })
            .sum()
    }

    /// Graceful drain: stop admitting, let workers finish queued and
    /// in-flight jobs, and — if `drain_deadline` expires first — flush
    /// every remaining waiter with a typed `drain-deadline` outcome so no
    /// admitted request is ever left hanging. Returns once all shards are
    /// quiesced or flushed.
    pub fn drain(&self, drain_deadline: Duration) -> DrainReport {
        let started = Instant::now();
        self.drain.request_drain();
        for shard in &self.shards {
            lock_recover(&shard.state).draining = true;
            shard.cv.notify_all();
        }
        // wait for every shard to finish its queued + running jobs
        let deadline = started + drain_deadline;
        let mut forced = false;
        loop {
            let idle = self
                .shards
                .iter()
                .all(|s| lock_recover(&s.state).jobs.is_empty());
            if idle {
                break;
            }
            if Instant::now() >= deadline {
                forced = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Flush whatever is left with a typed outcome. A worker finishing
        // its job after this finds the job gone under the lock and sends
        // nothing, so no waiter ever sees two frames.
        let mut flushed = 0usize;
        if forced {
            for shard in &self.shards {
                let mut st = lock_recover(&shard.state);
                for q in st.queues.iter_mut() {
                    q.clear();
                }
                for (_key, job) in st.jobs.drain() {
                    for w in job.waiters {
                        flushed += 1;
                        SERVER_DRAIN_FLUSHED.inc();
                        SERVER_DRAINED.inc();
                        let frame = render_error(
                            Some(&w.id),
                            "drain-deadline",
                            "server drained before this request completed",
                        );
                        let _ = w.tx.send(frame);
                    }
                }
            }
        }
        // Workers park once draining && queues empty; join the ones that
        // already exited, but never block past the drain deadline on a
        // worker still unwinding a cancelled tier.
        let handles = std::mem::take(&mut *lock_recover(&self.workers));
        for h in handles {
            if h.is_finished() {
                let _ = h.join();
            }
        }
        DrainReport {
            flushed,
            forced,
            elapsed: started.elapsed(),
        }
    }
}

impl QosClass {
    /// The higher-priority (more important) of two classes.
    fn max_priority(self, other: QosClass) -> QosClass {
        if other.priority() < self.priority() {
            other
        } else {
            self
        }
    }
}

/// Should an exhausted outcome be retried? Only when every tier failure
/// is transient — a classified `Error` (unknown model/device, infeasible
/// kernel) is permanent and retrying it is pure waste.
fn transient(outcome: &EstimateOutcome) -> bool {
    matches!(outcome.kind, OutcomeKind::Exhausted)
        && !outcome.attempts.is_empty()
        && outcome
            .attempts
            .iter()
            .all(|a| !matches!(a.failure, TierFailure::Error(_)))
}

/// Deterministic jitter for retry backoff: a pure function of the key
/// and attempt number, so fixed-seed chaos replays sleep identically.
fn backoff_jitter_ms(key: &JobKey, attempt: u32, base_ms: u64) -> u64 {
    if base_ms == 0 {
        return 0;
    }
    let mut bytes = key.0.as_bytes().to_vec();
    bytes.extend_from_slice(key.1.as_bytes());
    bytes.push(attempt as u8);
    fnv1a(&bytes) % base_ms
}

/// One worker: owns a shard and a private engine, pops jobs in priority
/// order, and fans results out to every waiter. The engine contains tier
/// panics itself; the extra `catch_unwind` here is the last line of
/// defense — a scheduler bug must classify, not kill the worker.
fn worker_loop(
    shard: Arc<Shard>,
    cfg: ServerConfig,
    slot: Arc<PredictorSlot>,
    corpus: Option<Arc<Corpus>>,
    ground_truth: Option<Arc<MeasurementLog>>,
) {
    let mut engine = ResilientEngine::with_shared_slot(cfg.engine.clone(), slot);
    if let Some(log) = ground_truth {
        engine.set_ground_truth_log(log);
    }
    if let Some(c) = &corpus {
        engine.warm_from_corpus(c);
    }
    loop {
        let (key, deadline_ms, revalidate) = {
            let mut st = lock_recover(&shard.state);
            loop {
                if let Some(key) = st.pop_next() {
                    let job = st.jobs.get(&key).expect("popped job exists");
                    break (key.clone(), job.deadline_ms, job.revalidate);
                }
                if st.draining {
                    return;
                }
                let (next, _timeout) = match shard.cv.wait_timeout(st, Duration::from_millis(100)) {
                    Ok(woken) => woken,
                    Err(poisoned) => poisoned.into_inner(),
                };
                st = next;
            }
        };

        let work = catch_unwind(AssertUnwindSafe(|| {
            run_job(&mut engine, &cfg, &key, deadline_ms, revalidate)
        }));
        let (outcome, retries) = work.unwrap_or_else(|_| {
            // a worker-level panic (outside the engine's own containment)
            // still yields a typed outcome for every waiter
            (
                EstimateOutcome {
                    model: key.0.clone(),
                    device: key.1.clone(),
                    kind: OutcomeKind::Exhausted,
                    ipc: None,
                    latency_ms: None,
                    attempts: Vec::new(),
                    elapsed_ms: 0.0,
                    generation: None,
                },
                0,
            )
        });

        let stale_served = matches!(
            outcome.kind,
            OutcomeKind::Served {
                tier: Tier::StaleCache
            }
        );

        let waiters = {
            let mut st = lock_recover(&shard.state);
            let waiters = st.jobs.remove(&key).map(|j| j.waiters).unwrap_or_default();
            // stale-while-revalidate: heal the cache in the background
            // (same key hashes to this same shard)
            if stale_served && !revalidate && cfg.revalidate_stale {
                st.try_enqueue_revalidate(&key, &cfg.policy);
            }
            waiters
        };
        let draining = cfg.drain.draining();
        let body = result_body(&outcome, retries);
        for w in waiters {
            SERVER_COMPLETED.inc();
            if draining {
                SERVER_DRAINED.inc();
            }
            obs::global()
                .histogram(&format!("server.qos.{}.latency_us", w.class.name()))
                .record_duration(w.enqueued.elapsed());
            let _ = w.tx.send(render_result(&w.id, &body));
        }
    }
}

/// Run one job through the engine with bounded retry + jittered backoff.
fn run_job(
    engine: &mut ResilientEngine,
    cfg: &ServerConfig,
    key: &JobKey,
    deadline_ms: u64,
    revalidate: bool,
) -> (EstimateOutcome, u32) {
    let mut retries = 0u32;
    loop {
        let outcome = if revalidate {
            engine.estimate_live(&key.0, &key.1, deadline_ms)
        } else {
            engine.estimate_with_deadline(&key.0, &key.1, deadline_ms)
        };
        if retries < cfg.max_retries && transient(&outcome) {
            retries += 1;
            SERVER_RETRIES.inc();
            let backoff = cfg
                .retry_backoff_ms
                .saturating_mul(1 << (retries - 1).min(6))
                .saturating_add(backoff_jitter_ms(key, retries, cfg.retry_backoff_ms))
                .min(1_000);
            std::thread::sleep(Duration::from_millis(backoff));
            continue;
        }
        return (outcome, retries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, TierAttempt};

    fn exhausted_with(failures: Vec<TierFailure>) -> EstimateOutcome {
        EstimateOutcome {
            model: "m".into(),
            device: "d".into(),
            kind: OutcomeKind::Exhausted,
            ipc: None,
            latency_ms: None,
            attempts: failures
                .into_iter()
                .map(|failure| TierAttempt {
                    tier: Tier::Analytical,
                    failure,
                })
                .collect(),
            elapsed_ms: 0.0,
            generation: None,
        }
    }

    #[test]
    fn lock_recover_survives_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert!(m.lock().is_err(), "mutex is poisoned");
        assert_eq!(*lock_recover(&m), 7, "state recovered intact");
        *lock_recover(&m) += 1;
        assert_eq!(*lock_recover(&m), 8);
    }

    fn submit_and_recv(sched: &Scheduler, id: &str, model: &str) -> String {
        let (tx, rx) = std::sync::mpsc::channel();
        sched
            .submit(
                EstimateRequest {
                    id: id.into(),
                    model: model.into(),
                    device: "V100S".into(),
                    qos: QosClass::Interactive,
                    deadline_ms: Some(2_000),
                },
                tx,
            )
            .expect("admitted");
        rx.recv_timeout(Duration::from_secs(30)).expect("one frame")
    }

    #[test]
    fn shard_keeps_serving_after_lock_poisoned_by_panicking_thread() {
        // chaos: a thread panics while holding a shard's state lock —
        // sessions and workers recover the poisoned lock and the shard
        // keeps answering instead of wedging every later request
        let cfg = ServerConfig {
            workers: 1,
            engine: EngineConfig {
                tiers: vec![Tier::StaleCache],
                ..EngineConfig::default()
            },
            ..ServerConfig::default()
        };
        let sched = Scheduler::start(&cfg, None, None);
        let shard = Arc::clone(&sched.shards[0]);
        let _ = std::thread::spawn(move || {
            let _guard = shard.state.lock().unwrap();
            panic!("chaos: poison the shard lock mid-job");
        })
        .join();
        assert!(sched.shards[0].state.lock().is_err(), "lock is poisoned");
        let frame = submit_and_recv(&sched, "after-poison", "some-model");
        assert!(frame.contains("\"id\":\"after-poison\""), "{frame}");
        sched.drain(Duration::from_millis(500));
    }

    #[test]
    fn shard_keeps_serving_through_injected_tier_panics() {
        // chaos: every live tier invocation panics mid-job; the panic is
        // contained per-tier and every admitted request still gets
        // exactly one classified frame
        let cfg = ServerConfig {
            workers: 1,
            engine: EngineConfig {
                deadline_ms: 2_000,
                tiers: vec![Tier::Analytical, Tier::StaleCache],
                chaos: gpu_sim::ChaosProfile {
                    panic_rate: 1.0,
                    ..gpu_sim::ChaosProfile::none()
                },
                ..EngineConfig::default()
            },
            ..ServerConfig::default()
        };
        let sched = Scheduler::start(&cfg, None, None);
        for i in 0..3 {
            let frame = submit_and_recv(&sched, &format!("r{i}"), &format!("model-{i}"));
            assert!(frame.contains(&format!("\"id\":\"r{i}\"")), "{frame}");
        }
        sched.drain(Duration::from_millis(500));
    }

    #[test]
    fn transient_classification() {
        assert!(transient(&exhausted_with(vec![
            TierFailure::Timeout,
            TierFailure::BreakerOpen,
            TierFailure::Panic("boom".into()),
        ])));
        assert!(
            !transient(&exhausted_with(vec![
                TierFailure::Timeout,
                TierFailure::Error("unknown model".into()),
            ])),
            "classified errors are permanent"
        );
        assert!(
            !transient(&exhausted_with(vec![])),
            "no attempts means nothing to retry"
        );
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        let key = ("resnet50".to_string(), "a100".to_string());
        let a = backoff_jitter_ms(&key, 1, 50);
        let b = backoff_jitter_ms(&key, 1, 50);
        assert_eq!(a, b, "same key+attempt draws the same jitter");
        assert!(a < 50);
        assert_eq!(backoff_jitter_ms(&key, 1, 0), 0);
        assert!(backoff_jitter_ms(&key, 2, 50) < 50);
    }

    #[test]
    fn max_priority_picks_the_more_important_class() {
        assert_eq!(
            QosClass::BestEffort.max_priority(QosClass::Interactive),
            QosClass::Interactive
        );
        assert_eq!(
            QosClass::Interactive.max_priority(QosClass::Batch),
            QosClass::Interactive
        );
        assert_eq!(
            QosClass::Batch.max_priority(QosClass::Batch),
            QosClass::Batch
        );
    }
}
