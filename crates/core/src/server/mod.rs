//! The persistent estimation server (`cnnperf serve`).
//!
//! A long-running daemon speaking newline-delimited JSON over a Unix
//! socket or stdin/stdout. Submodules:
//!
//! * [`protocol`] — the NDJSON wire grammar and typed protocol errors;
//! * [`qos`] — client QoS classes and the per-class policy (deadlines,
//!   queue quotas);
//! * [`scheduler`] — the sharded worker pool: request coalescing,
//!   admission control, bounded retry, stale-while-revalidate;
//! * [`session`] — per-connection framed reader (oversized / slow-loris
//!   guards) and writer thread;
//! * [`drain`] — the graceful-drain state machine and SIGTERM/SIGINT
//!   wiring.
//!
//! The accept loop is deliberately poll-based (non-blocking listeners +
//! a short sleep): it keeps the loop free to notice drain signals, and
//! the server's latency floor is dominated by engine work, not by the
//! few milliseconds of accept poll granularity.

pub mod drain;
pub mod protocol;
pub mod qos;
pub mod scheduler;
pub mod session;

pub use drain::{install_signal_drain, signal_drain_requested, DrainController, DrainState};
pub use protocol::{
    parse_frame, EstimateRequest, Frame, ProtocolError, DEFAULT_FRAME_STALL_MS,
    DEFAULT_MAX_FRAME_BYTES,
};
pub use qos::{QosClass, QosPolicy};
pub use scheduler::{DrainReport, Scheduler, SubmitError};
pub use session::{run_session, SessionEnd};

use crate::engine::EngineConfig;
use crate::lifecycle::LifecycleManager;
use crate::model::PerformancePredictor;
use crate::pipeline::Corpus;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Scrapes served by the Prometheus metrics endpoint.
static SERVER_METRICS_SCRAPES: obs::LazyCounter = obs::LazyCounter::new("server.metrics.scrapes");

/// Everything the server needs to run. `Clone` because every scheduler
/// shard and session carries its own copy (all shared state lives behind
/// the [`DrainController`] and the scheduler's own locks).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads == shards; each owns a private engine.
    pub workers: usize,
    /// Per-class deadlines and queue quotas.
    pub policy: QosPolicy,
    /// Engine configuration given to every shard.
    pub engine: EngineConfig,
    /// Shared drain handle (accept loop, sessions and scheduler all poll
    /// the same one).
    pub drain: DrainController,
    /// Transient-failure retries per request.
    pub max_retries: u32,
    /// Base backoff between retries (exponential + deterministic jitter).
    pub retry_backoff_ms: u64,
    /// Enqueue a background revalidation when a request is served stale.
    pub revalidate_stale: bool,
    /// Byte cap per protocol frame.
    pub max_frame_bytes: usize,
    /// Slow-loris guard: max stall of a partial frame.
    pub frame_stall_ms: u64,
    /// Budget for graceful drain before leftover waiters are flushed.
    pub drain_deadline_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            policy: QosPolicy::default(),
            engine: EngineConfig::default(),
            drain: DrainController::new(),
            max_retries: 2,
            retry_backoff_ms: 10,
            revalidate_stale: true,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            frame_stall_ms: DEFAULT_FRAME_STALL_MS,
            drain_deadline_ms: 5_000,
        }
    }
}

/// Fatal server-level failures (mapped to exit code 6 by the CLI).
#[derive(Debug)]
pub enum ServeError {
    /// Could not bind the Unix socket or the metrics TCP listener.
    Bind { what: String, detail: String },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { what, detail } => {
                write!(f, "failed to bind {what}: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// The assembled server: a scheduler plus the accept loop(s), and — when
/// lifecycle-enabled — the background trainer thread.
pub struct Server {
    cfg: ServerConfig,
    scheduler: Arc<Scheduler>,
    lifecycle: Option<Arc<LifecycleManager>>,
}

impl Server {
    /// Start the worker pool (engines warm immediately; the listener is
    /// bound later by [`run_unix`](Self::run_unix) /
    /// [`run_stdio`](Self::run_stdio)).
    pub fn new(
        cfg: ServerConfig,
        predictor: Option<Arc<PerformancePredictor>>,
        corpus: Option<Arc<Corpus>>,
    ) -> Server {
        let scheduler = Scheduler::start(&cfg, predictor, corpus);
        Server {
            cfg,
            scheduler,
            lifecycle: None,
        }
    }

    /// A lifecycle-enabled server: every shard reads the manager's
    /// hot-swap slot and publishes ground truth into its measurement log,
    /// and a background trainer thread runs the
    /// ingest → retrain → shadow → promote loop until the server drains.
    /// Call [`LifecycleManager::cold_start`] before this so the slot is
    /// armed when the shards spin up.
    pub fn with_lifecycle(
        cfg: ServerConfig,
        corpus: Option<Arc<Corpus>>,
        manager: Arc<LifecycleManager>,
    ) -> Server {
        let scheduler = Scheduler::start_with_slot(
            &cfg,
            Arc::clone(manager.slot()),
            corpus,
            Some(Arc::clone(manager.log())),
        );
        let trainer_mgr = Arc::clone(&manager);
        let trainer_drain = cfg.drain.clone();
        // detached on purpose: run_until exits as soon as the drain
        // controller flips, and the daemon process outlives nothing
        let _ = std::thread::Builder::new()
            .name("serve-lifecycle".into())
            .spawn(move || trainer_mgr.run_until(|| trainer_drain.draining()));
        Server {
            cfg,
            scheduler,
            lifecycle: Some(manager),
        }
    }

    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// The lifecycle manager, when this server was built with one.
    pub fn lifecycle(&self) -> Option<&Arc<LifecycleManager>> {
        self.lifecycle.as_ref()
    }

    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Serve NDJSON sessions on a Unix socket until a drain is requested
    /// (SIGTERM/SIGINT, a `{"op":"drain"}` frame, or
    /// [`DrainController::request_drain`]), then drain gracefully and
    /// return the report. `metrics_addr` optionally serves a live
    /// Prometheus endpoint (e.g. `127.0.0.1:9095`) from the same loop.
    #[cfg(unix)]
    pub fn run_unix(
        &self,
        socket_path: &std::path::Path,
        metrics_addr: Option<&str>,
    ) -> Result<DrainReport, ServeError> {
        use std::os::unix::net::UnixListener;

        // a previous unclean shutdown may have left a stale socket file
        let _ = std::fs::remove_file(socket_path);
        let listener = UnixListener::bind(socket_path).map_err(|e| ServeError::Bind {
            what: format!("unix socket {}", socket_path.display()),
            detail: e.to_string(),
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Bind {
                what: format!("unix socket {}", socket_path.display()),
                detail: e.to_string(),
            })?;
        let metrics = match metrics_addr {
            Some(addr) => {
                let l = std::net::TcpListener::bind(addr).map_err(|e| ServeError::Bind {
                    what: format!("metrics endpoint {addr}"),
                    detail: e.to_string(),
                })?;
                l.set_nonblocking(true).map_err(|e| ServeError::Bind {
                    what: format!("metrics endpoint {addr}"),
                    detail: e.to_string(),
                })?;
                Some(l)
            }
            None => None,
        };
        install_signal_drain();

        let active_sessions = Arc::new(AtomicUsize::new(0));
        loop {
            if signal_drain_requested() {
                self.cfg.drain.request_drain();
            }
            if self.cfg.drain.draining() {
                break;
            }
            let mut progressed = false;
            match listener.accept() {
                Ok((stream, _addr)) => {
                    progressed = true;
                    self.spawn_session(stream, &active_sessions);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(_) => {}
            }
            if let Some(m) = &metrics {
                if let Ok((stream, _addr)) = m.accept() {
                    progressed = true;
                    serve_metrics_scrape(stream);
                }
            }
            if !progressed {
                std::thread::sleep(Duration::from_millis(5));
            }
        }

        let report = self
            .scheduler
            .drain(Duration::from_millis(self.cfg.drain_deadline_ms));
        // give session writers a moment to flush drained responses to
        // clients that are still connected
        let grace = Instant::now() + Duration::from_millis(500);
        while active_sessions.load(Ordering::SeqCst) > 0 && Instant::now() < grace {
            std::thread::sleep(Duration::from_millis(5));
        }
        let _ = std::fs::remove_file(socket_path);
        self.cfg.drain.mark_stopped();
        Ok(report)
    }

    #[cfg(unix)]
    fn spawn_session(
        &self,
        stream: std::os::unix::net::UnixStream,
        active_sessions: &Arc<AtomicUsize>,
    ) {
        // the read timeout turns the blocking read into a poll so the
        // session can run its slow-loris clock between bytes
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return, // connection already dead
        };
        let scheduler = Arc::clone(&self.scheduler);
        let cfg = self.cfg.clone();
        let active = Arc::clone(active_sessions);
        active.fetch_add(1, Ordering::SeqCst);
        let spawned = std::thread::Builder::new()
            .name("serve-session".into())
            .spawn(move || {
                let _ = run_session(stream, writer, &scheduler, &cfg);
                active.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            active_sessions.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Serve one NDJSON session on stdin/stdout (no listener). Returns
    /// after stdin EOF or an in-band drain request, once the scheduler
    /// has drained.
    pub fn run_stdio(&self) -> Result<DrainReport, ServeError> {
        install_signal_drain();
        let _ = run_session(
            std::io::stdin().lock(),
            std::io::stdout(),
            &self.scheduler,
            &self.cfg,
        );
        let report = self
            .scheduler
            .drain(Duration::from_millis(self.cfg.drain_deadline_ms));
        self.cfg.drain.mark_stopped();
        Ok(report)
    }
}

/// Answer one Prometheus scrape: read (and ignore) the request line,
/// write the full metrics exposition, close. Deliberately minimal HTTP —
/// enough for `curl` and a Prometheus scraper, with a short read timeout
/// so a stuck scraper cannot wedge the accept loop.
fn serve_metrics_scrape(mut stream: std::net::TcpStream) {
    use std::io::Read;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 1024];
    let _ = stream.read(&mut buf); // request line + headers; content ignored
    let body = obs::global().snapshot().to_prometheus();
    SERVER_METRICS_SCRAPES.inc();
    let header = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream
        .write_all(header.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()));
}
