//! The newline-delimited-JSON wire protocol of the estimation server.
//!
//! # Grammar
//!
//! One frame per line, UTF-8 JSON objects. Requests:
//!
//! ```text
//! {"op":"estimate","id":"r1","model":"alexnet","device":"V100S",
//!  "qos":"interactive","deadline_ms":500}        op defaults to estimate;
//!                                                qos defaults to batch;
//!                                                deadline_ms defaults to
//!                                                the class deadline
//! {"op":"ping","id":"p1"}                        liveness probe
//! {"op":"stats","id":"s1"}                       metrics snapshot
//! {"op":"drain","id":"d1"}                       request graceful drain
//! ```
//!
//! Responses (one line each, `id` echoes the request when it had one):
//!
//! ```text
//! {"id":"r1","ok":true,"result":{...}}           deterministic payload
//! {"id":"r1","ok":false,"error":"overloaded","detail":"..."}
//! {"id":null,"ok":false,"error":"malformed","detail":"..."}
//! ```
//!
//! Robustness is the protocol's whole job: malformed JSON, oversized
//! frames, unknown ops, bad field types and stalled (slow-loris) frames
//! all map to a **typed** [`ProtocolError`] — never a panic, never a
//! silent drop, never a wedged connection. The `result` payload of an
//! estimate is deterministic (no wall-clock fields), so coalesced
//! responses are byte-identical across every waiter.

use super::qos::QosClass;
use crate::engine::{EstimateOutcome, OutcomeKind, Tier};
use std::fmt::Write as _;

/// Default cap on one frame's byte length (id + names + slack; a real
/// request is well under 1 KiB).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 * 1024;

/// Default time a partially received frame may stall before the
/// connection is classified as a slow-loris and closed.
pub const DEFAULT_FRAME_STALL_MS: u64 = 5_000;

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    Estimate(EstimateRequest),
    Ping { id: Option<String> },
    Stats { id: Option<String> },
    Drain { id: Option<String> },
}

/// One estimation request as received on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateRequest {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: String,
    pub model: String,
    pub device: String,
    pub qos: QosClass,
    /// Per-request deadline override; `None` uses the class deadline.
    pub deadline_ms: Option<u64>,
}

/// Typed protocol-level failures. Every variant renders as an
/// `{"ok":false,"error":<kind>,...}` frame; none of them panic or wedge
/// the session.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The line was not valid JSON (or not a JSON object).
    Malformed { detail: String },
    /// The frame exceeded the configured byte cap.
    Oversized { limit: usize },
    /// A partial frame stalled past the slow-loris deadline; the
    /// connection is closed after reporting this.
    Stalled { waited_ms: u64 },
    /// Valid JSON, but fields are missing or of the wrong type.
    BadRequest { id: Option<String>, detail: String },
    /// Valid JSON with an `op` this server does not speak.
    UnknownOp { id: Option<String>, op: String },
}

impl ProtocolError {
    /// Stable kind label, used both on the wire and as the
    /// `server.protocol.<kind>` counter suffix.
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolError::Malformed { .. } => "malformed",
            ProtocolError::Oversized { .. } => "oversized",
            ProtocolError::Stalled { .. } => "stalled",
            ProtocolError::BadRequest { .. } => "bad-request",
            ProtocolError::UnknownOp { .. } => "unknown-op",
        }
    }

    pub fn id(&self) -> Option<&str> {
        match self {
            ProtocolError::BadRequest { id, .. } | ProtocolError::UnknownOp { id, .. } => {
                id.as_deref()
            }
            _ => None,
        }
    }

    pub fn detail(&self) -> String {
        match self {
            ProtocolError::Malformed { detail } => detail.clone(),
            ProtocolError::Oversized { limit } => {
                format!("frame exceeds {limit} bytes")
            }
            ProtocolError::Stalled { waited_ms } => {
                format!("partial frame stalled for {waited_ms} ms; closing connection")
            }
            ProtocolError::BadRequest { detail, .. } => detail.clone(),
            ProtocolError::UnknownOp { op, .. } => {
                format!("unknown op `{op}` (want estimate|ping|stats|drain)")
            }
        }
    }
}

fn str_field(
    obj: &[(String, serde_json::Value)],
    name: &str,
) -> Result<Option<String>, ProtocolError> {
    match obj.iter().find(|(k, _)| k == name).map(|(_, v)| v) {
        None => Ok(None),
        Some(serde_json::Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(ProtocolError::BadRequest {
            id: None,
            detail: format!("field `{name}` must be a string"),
        }),
    }
}

fn u64_field(
    obj: &[(String, serde_json::Value)],
    name: &str,
) -> Result<Option<u64>, ProtocolError> {
    match obj.iter().find(|(k, _)| k == name).map(|(_, v)| v) {
        None => Ok(None),
        Some(serde_json::Value::Int(i)) if *i > 0 => Ok(Some(*i as u64)),
        Some(_) => Err(ProtocolError::BadRequest {
            id: None,
            detail: format!("field `{name}` must be a positive integer"),
        }),
    }
}

/// Parse one request line. The line must already be under the frame byte
/// cap (the session enforces that while reading).
pub fn parse_frame(line: &str) -> Result<Frame, ProtocolError> {
    let value = serde_json::parse(line.trim()).map_err(|e| ProtocolError::Malformed {
        detail: e.to_string(),
    })?;
    let serde_json::Value::Obj(fields) = value else {
        return Err(ProtocolError::Malformed {
            detail: "frame must be a JSON object".into(),
        });
    };
    // recover the id first so even bad requests can be correlated
    let id = str_field(&fields, "id").unwrap_or(None);
    let with_id = |mut e: ProtocolError| {
        if let ProtocolError::BadRequest { id: slot, .. } = &mut e {
            *slot = id.clone();
        }
        e
    };
    let op = str_field(&fields, "op")
        .map_err(with_id)?
        .unwrap_or_else(|| "estimate".to_string());
    match op.as_str() {
        "ping" => Ok(Frame::Ping { id }),
        "stats" => Ok(Frame::Stats { id }),
        "drain" => Ok(Frame::Drain { id }),
        "estimate" => {
            let require = |name: &str| -> Result<String, ProtocolError> {
                str_field(&fields, name).map_err(with_id)?.ok_or_else(|| {
                    ProtocolError::BadRequest {
                        id: id.clone(),
                        detail: format!("estimate frame missing `{name}`"),
                    }
                })
            };
            let request_id = require("id")?;
            let model = require("model")?;
            let device = require("device")?;
            let qos = match str_field(&fields, "qos").map_err(with_id)? {
                Some(spec) => QosClass::parse(&spec).map_err(|e| ProtocolError::BadRequest {
                    id: id.clone(),
                    detail: e,
                })?,
                None => QosClass::Batch,
            };
            let deadline_ms = u64_field(&fields, "deadline_ms").map_err(with_id)?;
            Ok(Frame::Estimate(EstimateRequest {
                id: request_id,
                model,
                device,
                qos,
                deadline_ms,
            }))
        }
        other => Err(ProtocolError::UnknownOp {
            id,
            op: other.to_string(),
        }),
    }
}

/// JSON-escape a string into `out`, quotes included.
fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_opt_id(id: Option<&str>, out: &mut String) {
    match id {
        Some(id) => json_string(id, out),
        None => out.push_str("null"),
    }
}

/// The deterministic result payload of one estimate: everything a client
/// needs, **no wall-clock fields** and no delivery metadata (whether the
/// request was coalesced is visible in `server.coalesced`, not here), so
/// a coalesced response is byte-identical to the sequential one.
pub fn result_body(outcome: &EstimateOutcome, retries: u32) -> String {
    let mut out = String::with_capacity(192);
    out.push_str("{\"model\":");
    json_string(&outcome.model, &mut out);
    out.push_str(",\"device\":");
    json_string(&outcome.device, &mut out);
    out.push_str(",\"outcome\":");
    let kind = match &outcome.kind {
        OutcomeKind::Served { tier } => format!("served:{tier}"),
        OutcomeKind::Exhausted => "exhausted".into(),
        OutcomeKind::Overloaded => "overloaded".into(),
    };
    json_string(&kind, &mut out);
    let stale = matches!(
        &outcome.kind,
        OutcomeKind::Served {
            tier: Tier::StaleCache
        }
    );
    match outcome.ipc {
        Some(v) => {
            let _ = write!(out, ",\"ipc\":{v:.9}");
        }
        None => out.push_str(",\"ipc\":null"),
    }
    match outcome.latency_ms {
        Some(v) => {
            let _ = write!(out, ",\"latency_ms\":{v:.6}");
        }
        None => out.push_str(",\"latency_ms\":null"),
    }
    let _ = write!(out, ",\"stale\":{stale},\"retries\":{retries}");
    // which predictor generation answered (regressor-tier responses
    // only): every response is attributable to exactly one hot-swap slot
    // generation, or null when another tier served
    match outcome.generation {
        Some(g) => {
            let _ = write!(out, ",\"generation\":{g}");
        }
        None => out.push_str(",\"generation\":null"),
    }
    out.push_str(",\"attempts\":[");
    for (i, a) in outcome.attempts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(&format!("{}:{}", a.tier, a.failure.canonical()), &mut out);
    }
    out.push_str("]}");
    out
}

/// Wrap a result payload for one waiter: only the `id` differs between
/// coalesced responses.
pub fn render_result(id: &str, body: &str) -> String {
    let mut out = String::with_capacity(body.len() + 32);
    out.push_str("{\"id\":");
    json_string(id, &mut out);
    out.push_str(",\"ok\":true,\"result\":");
    out.push_str(body);
    out.push('}');
    out
}

/// Render a typed error frame.
pub fn render_error(id: Option<&str>, kind: &str, detail: &str) -> String {
    let mut out = String::with_capacity(64 + detail.len());
    out.push_str("{\"id\":");
    json_opt_id(id, &mut out);
    out.push_str(",\"ok\":false,\"error\":");
    json_string(kind, &mut out);
    out.push_str(",\"detail\":");
    json_string(detail, &mut out);
    out.push('}');
    out
}

/// Render a small ad-hoc success frame whose `result` is already JSON
/// (ping/stats/drain acknowledgements).
pub fn render_ok(id: Option<&str>, result_json: &str) -> String {
    let mut out = String::with_capacity(result_json.len() + 32);
    out.push_str("{\"id\":");
    json_opt_id(id, &mut out);
    out.push_str(",\"ok\":true,\"result\":");
    out.push_str(result_json);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_frame_parses_with_defaults() {
        let f = parse_frame(r#"{"id":"r1","model":"alexnet","device":"V100S"}"#).unwrap();
        let Frame::Estimate(req) = f else {
            panic!("not an estimate")
        };
        assert_eq!(req.id, "r1");
        assert_eq!(req.qos, QosClass::Batch);
        assert_eq!(req.deadline_ms, None);
    }

    #[test]
    fn estimate_frame_parses_explicit_fields() {
        let f = parse_frame(
            r#"{"op":"estimate","id":"a","model":"m","device":"d","qos":"interactive","deadline_ms":250}"#,
        )
        .unwrap();
        let Frame::Estimate(req) = f else {
            panic!("not an estimate")
        };
        assert_eq!(req.qos, QosClass::Interactive);
        assert_eq!(req.deadline_ms, Some(250));
    }

    #[test]
    fn malformed_and_bad_frames_are_typed() {
        assert_eq!(parse_frame("not json").unwrap_err().kind(), "malformed");
        assert_eq!(parse_frame("[1,2]").unwrap_err().kind(), "malformed");
        let missing = parse_frame(r#"{"id":"x","model":"m"}"#).unwrap_err();
        assert_eq!(missing.kind(), "bad-request");
        assert_eq!(missing.id(), Some("x"));
        let bad_qos =
            parse_frame(r#"{"id":"x","model":"m","device":"d","qos":"gold"}"#).unwrap_err();
        assert_eq!(bad_qos.kind(), "bad-request");
        let bad_deadline =
            parse_frame(r#"{"id":"x","model":"m","device":"d","deadline_ms":-5}"#).unwrap_err();
        assert_eq!(bad_deadline.kind(), "bad-request");
        let unknown = parse_frame(r#"{"op":"fly","id":"u"}"#).unwrap_err();
        assert_eq!(unknown.kind(), "unknown-op");
        assert_eq!(unknown.id(), Some("u"));
    }

    #[test]
    fn control_frames_parse() {
        assert_eq!(
            parse_frame(r#"{"op":"ping"}"#).unwrap(),
            Frame::Ping { id: None }
        );
        assert_eq!(
            parse_frame(r#"{"op":"drain","id":"d"}"#).unwrap(),
            Frame::Drain {
                id: Some("d".into())
            }
        );
    }

    #[test]
    fn rendered_frames_are_valid_json() {
        let err = render_error(Some("r\"1"), "malformed", "line 1: bad \"escape\"");
        let v = serde_json::parse(&err).expect("error frame parses");
        let serde_json::Value::Obj(fields) = v else {
            panic!("not an object")
        };
        assert!(fields.iter().any(|(k, _)| k == "error"));
        let ok = render_ok(None, "{\"pong\":true}");
        serde_json::parse(&ok).expect("ok frame parses");
    }

    #[test]
    fn result_body_is_deterministic_and_wall_clock_free() {
        let outcome = EstimateOutcome {
            model: "m".into(),
            device: "d".into(),
            kind: OutcomeKind::Served {
                tier: Tier::Analytical,
            },
            ipc: Some(1.25),
            latency_ms: Some(3.5),
            attempts: Vec::new(),
            elapsed_ms: 42.0,
            generation: None,
        };
        let a = result_body(&outcome, 0);
        let mut later = outcome.clone();
        later.elapsed_ms = 99.0; // wall time must not leak into the body
        let b = result_body(&later, 0);
        assert_eq!(a, b);
        assert!(a.contains("\"outcome\":\"served:analytical\""));
        assert!(a.contains("\"generation\":null"));
        serde_json::parse(&a).expect("body parses");
        let mut served_by_regressor = outcome.clone();
        served_by_regressor.generation = Some(4);
        let c = result_body(&served_by_regressor, 0);
        assert!(c.contains("\"generation\":4"));
    }
}
