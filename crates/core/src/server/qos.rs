//! Per-client quality-of-service classes and the admission policy built
//! on them.
//!
//! Every request carries a [`QosClass`]; the class decides three things:
//!
//! 1. **Deadline** — the wall-clock budget handed to the tier ladder
//!    ([`QosPolicy::deadline_ms`]), so interactive traffic degrades to the
//!    cheap tiers quickly while batch work is allowed to run the detailed
//!    simulator.
//! 2. **Queue quota** — how many distinct jobs of that class may wait in
//!    one scheduler shard ([`QosPolicy::queue_quota`]); admission control
//!    sheds beyond it with a typed outcome instead of queueing into the
//!    deadline.
//! 3. **Shed priority** — under overload the lowest class is dropped
//!    first: best-effort before batch before interactive (see
//!    [`crate::engine::ResilientEngine::estimate_batch_qos`] and the
//!    scheduler's admission path).

use serde::{Deserialize, Serialize};

/// Client-declared service class, in descending priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QosClass {
    /// A user is waiting on the answer: tight deadline, shed last.
    Interactive,
    /// Throughput traffic (sweeps, corpus refresh): generous deadline.
    Batch,
    /// Opportunistic work (prefetch, revalidation): shed first.
    BestEffort,
}

impl QosClass {
    /// All classes, highest priority first. Scheduler queues and shed
    /// order both derive from this ordering.
    pub const ALL: [QosClass; 3] = [QosClass::Interactive, QosClass::Batch, QosClass::BestEffort];

    pub fn name(self) -> &'static str {
        match self {
            QosClass::Interactive => "interactive",
            QosClass::Batch => "batch",
            QosClass::BestEffort => "best-effort",
        }
    }

    /// Priority rank: 0 is the most important (shed last).
    pub fn priority(self) -> usize {
        match self {
            QosClass::Interactive => 0,
            QosClass::Batch => 1,
            QosClass::BestEffort => 2,
        }
    }

    pub fn parse(s: &str) -> Result<QosClass, String> {
        match s.trim() {
            "interactive" => Ok(QosClass::Interactive),
            "batch" => Ok(QosClass::Batch),
            "best-effort" | "besteffort" => Ok(QosClass::BestEffort),
            other => Err(format!(
                "unknown qos class `{other}` (want interactive|batch|best-effort)"
            )),
        }
    }
}

impl std::fmt::Display for QosClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-class deadlines and queue quotas, indexed by [`QosClass::priority`].
#[derive(Debug, Clone, PartialEq)]
pub struct QosPolicy {
    /// Wall-clock budget per request, milliseconds, per class.
    pub deadline_ms: [u64; 3],
    /// Distinct queued jobs allowed per scheduler shard, per class.
    pub queue_quota: [usize; 3],
}

impl Default for QosPolicy {
    fn default() -> Self {
        QosPolicy {
            // interactive answers fast (degrading to cheap tiers if it
            // must), batch may run the expensive tiers, best-effort gets
            // whatever fits
            deadline_ms: [2_000, 10_000, 1_000],
            queue_quota: [256, 128, 64],
        }
    }
}

impl QosPolicy {
    pub fn deadline_ms(&self, class: QosClass) -> u64 {
        self.deadline_ms[class.priority()]
    }

    pub fn queue_quota(&self, class: QosClass) -> usize {
        self.queue_quota[class.priority()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_parse_roundtrip() {
        for class in QosClass::ALL {
            assert_eq!(QosClass::parse(class.name()).unwrap(), class);
        }
        assert!(QosClass::parse("platinum").is_err());
    }

    #[test]
    fn priority_orders_shedding() {
        assert!(QosClass::Interactive.priority() < QosClass::Batch.priority());
        assert!(QosClass::Batch.priority() < QosClass::BestEffort.priority());
    }

    #[test]
    fn policy_lookup_by_class() {
        let p = QosPolicy {
            deadline_ms: [1, 2, 3],
            queue_quota: [10, 20, 30],
        };
        assert_eq!(p.deadline_ms(QosClass::Interactive), 1);
        assert_eq!(p.deadline_ms(QosClass::BestEffort), 3);
        assert_eq!(p.queue_quota(QosClass::Batch), 20);
    }
}
