//! One client connection: a framed NDJSON reader with oversized-frame
//! and slow-loris guards, and a dedicated writer thread.
//!
//! The reader owns the session thread. Every response — computed result,
//! typed protocol error, shed notice, drain flush — travels through one
//! mpsc channel to the writer thread, so scheduler workers fan results
//! into many sessions without ever blocking on a slow client's socket.
//! The writer exits when the last sender drops: the session's own handle
//! when the read loop ends, plus one clone per in-flight request — a
//! client that disconnects mid-request therefore still drains its
//! pending results (into a closed socket, counted as a disconnect)
//! without wedging any worker.

use super::protocol::{parse_frame, render_error, render_ok, Frame, ProtocolError};
use super::scheduler::Scheduler;
use super::ServerConfig;
use std::io::{BufWriter, Read, Write};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Connections accepted (unix socket) or opened (stdio counts as one).
static SERVER_CONNECTIONS: obs::LazyCounter = obs::LazyCounter::new("server.connections");
/// Sessions whose client went away before all responses were written.
static SERVER_DISCONNECTS: obs::LazyCounter = obs::LazyCounter::new("server.disconnects");

fn protocol_error_count(kind: &str) {
    obs::global()
        .counter(&format!("server.protocol.{kind}"))
        .inc();
}

/// What one call to [`FrameReader::next_event`] observed.
#[derive(Debug, PartialEq)]
pub enum ReadEvent {
    /// A complete line, under the byte cap (not yet parsed).
    Frame(String),
    /// A typed protocol failure. `Oversized` is recoverable (the rest of
    /// the line is discarded); `Stalled` means the caller must close.
    Error(ProtocolError),
    /// The read timed out with no progress — a chance to poll drain
    /// state. Only produced when the underlying stream has a read
    /// timeout set.
    Tick,
    /// End of stream (clean EOF or a hard I/O error).
    Eof,
}

/// Incremental NDJSON line reader with two abuse guards:
///
/// * **Oversized**: a line exceeding `max_frame_bytes` is reported once
///   and discarded through its terminating newline; the session lives on.
/// * **Slow-loris**: a *partial* line that makes no progress for
///   `frame_stall_ms` is reported as [`ProtocolError::Stalled`]; the
///   caller closes the connection. Timeouts with an empty buffer are
///   plain [`ReadEvent::Tick`]s — an idle client is not an attack.
pub struct FrameReader<R: Read> {
    inner: R,
    pending: Vec<u8>,
    chunk: [u8; 4096],
    max_frame_bytes: usize,
    frame_stall: Duration,
    /// When the current (incomplete) line started stalling.
    partial_since: Option<Instant>,
    /// Discarding the remainder of an oversized line.
    discarding: bool,
}

impl<R: Read> FrameReader<R> {
    pub fn new(inner: R, max_frame_bytes: usize, frame_stall_ms: u64) -> Self {
        FrameReader {
            inner,
            pending: Vec::new(),
            chunk: [0u8; 4096],
            max_frame_bytes,
            frame_stall: Duration::from_millis(frame_stall_ms.max(1)),
            partial_since: None,
            discarding: false,
        }
    }

    /// Extract the next complete line from `pending`, if any, honoring
    /// the discard state.
    fn take_line(&mut self) -> Option<ReadEvent> {
        loop {
            let nl = self.pending.iter().position(|b| *b == b'\n');
            if self.discarding {
                match nl {
                    Some(pos) => {
                        // the oversized line finally ended; drop it
                        self.pending.drain(..=pos);
                        self.discarding = false;
                        continue;
                    }
                    None => {
                        self.pending.clear();
                        return None;
                    }
                }
            }
            match nl {
                Some(pos) if pos > self.max_frame_bytes => {
                    // a complete line over the cap: drop it whole
                    self.pending.drain(..=pos);
                    self.partial_since = None;
                    return Some(ReadEvent::Error(ProtocolError::Oversized {
                        limit: self.max_frame_bytes,
                    }));
                }
                Some(pos) => {
                    let line: Vec<u8> = self.pending.drain(..=pos).collect();
                    self.partial_since = None;
                    let text = String::from_utf8_lossy(&line[..pos]).into_owned();
                    if text.trim().is_empty() {
                        continue; // blank lines are keep-alive noise
                    }
                    return Some(ReadEvent::Frame(text));
                }
                None => {
                    if self.pending.len() > self.max_frame_bytes {
                        self.discarding = true;
                        self.partial_since = None;
                        return Some(ReadEvent::Error(ProtocolError::Oversized {
                            limit: self.max_frame_bytes,
                        }));
                    }
                    if !self.pending.is_empty() && self.partial_since.is_none() {
                        self.partial_since = Some(Instant::now());
                    }
                    return None;
                }
            }
        }
    }

    /// Block (up to the stream's read timeout) for the next event.
    pub fn next_event(&mut self) -> ReadEvent {
        if let Some(ev) = self.take_line() {
            return ev;
        }
        loop {
            match self.inner.read(&mut self.chunk) {
                Ok(0) => {
                    // final unterminated line still counts as a frame
                    if !self.pending.is_empty() && !self.discarding {
                        let text = String::from_utf8_lossy(&self.pending).into_owned();
                        self.pending.clear();
                        if !text.trim().is_empty() {
                            return ReadEvent::Frame(text);
                        }
                    }
                    return ReadEvent::Eof;
                }
                Ok(n) => {
                    // note: the stall clock is NOT reset by progress — it
                    // marks when the current partial line began, so a
                    // byte-at-a-time drip feeder cannot evade the guard
                    self.pending.extend_from_slice(&self.chunk[..n]);
                    if let Some(ev) = self.take_line() {
                        return ev;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if let Some(since) = self.partial_since {
                        let waited = since.elapsed();
                        if waited >= self.frame_stall {
                            return ReadEvent::Error(ProtocolError::Stalled {
                                waited_ms: waited.as_millis() as u64,
                            });
                        }
                    }
                    return ReadEvent::Tick;
                }
                Err(_) => return ReadEvent::Eof,
            }
        }
    }
}

/// Spawn the writer half: drains response frames from the channel onto
/// the client stream, one line each. Returns the sender side. Write
/// failures mark the session disconnected but keep draining the channel
/// so scheduler workers never block on a dead client.
fn spawn_writer<W: Write + Send + 'static>(writer: W) -> Sender<String> {
    let (tx, rx) = channel::<String>();
    std::thread::Builder::new()
        .name("serve-writer".into())
        .spawn(move || {
            let mut out = BufWriter::new(writer);
            let mut dead = false;
            while let Ok(frame) = rx.recv() {
                if dead {
                    continue;
                }
                let failed = out
                    .write_all(frame.as_bytes())
                    .and_then(|()| out.write_all(b"\n"))
                    .and_then(|()| out.flush())
                    .is_err();
                if failed {
                    dead = true;
                    SERVER_DISCONNECTS.inc();
                }
            }
        })
        .expect("spawn session writer");
    tx
}

/// Why the session's read loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// The client closed (or the stream failed hard).
    Eof,
    /// The slow-loris guard fired; the connection was reported and closed.
    Stalled,
    /// The client asked the server to drain.
    DrainRequested,
}

/// Serve one connection until EOF, a stall, or a drain request. All
/// protocol violations produce typed error frames; nothing here panics
/// or wedges. The returned [`SessionEnd`] tells the accept loop whether
/// the client requested a drain.
pub fn run_session<R, W>(
    reader: R,
    writer: W,
    scheduler: &Arc<Scheduler>,
    cfg: &ServerConfig,
) -> SessionEnd
where
    R: Read,
    W: Write + Send + 'static,
{
    SERVER_CONNECTIONS.inc();
    let tx = spawn_writer(writer);
    let mut frames = FrameReader::new(reader, cfg.max_frame_bytes, cfg.frame_stall_ms);
    let mut drain_requested = false;
    let end = loop {
        match frames.next_event() {
            ReadEvent::Frame(line) => match parse_frame(&line) {
                Ok(Frame::Estimate(req)) => {
                    let id = req.id.clone();
                    if let Err(rejection) = scheduler.submit(req, tx.clone()) {
                        let _ = tx.send(rejection.to_frame(&id));
                    }
                }
                Ok(Frame::Ping { id }) => {
                    let state = cfg.drain.state().name();
                    let _ = tx.send(render_ok(
                        id.as_deref(),
                        &format!("{{\"pong\":true,\"state\":\"{state}\"}}"),
                    ));
                }
                Ok(Frame::Stats { id }) => {
                    let _ = tx.send(render_ok(
                        id.as_deref(),
                        &obs::global().snapshot().to_json(),
                    ));
                }
                Ok(Frame::Drain { id }) => {
                    cfg.drain.request_drain();
                    drain_requested = true;
                    let _ = tx.send(render_ok(id.as_deref(), "{\"draining\":true}"));
                }
                Err(e) => {
                    protocol_error_count(e.kind());
                    let _ = tx.send(render_error(e.id(), e.kind(), &e.detail()));
                }
            },
            ReadEvent::Error(e) => {
                protocol_error_count(e.kind());
                let fatal = matches!(e, ProtocolError::Stalled { .. });
                let _ = tx.send(render_error(e.id(), e.kind(), &e.detail()));
                if fatal {
                    break SessionEnd::Stalled;
                }
            }
            ReadEvent::Tick => {
                // nothing to do: admission rejections already carry typed
                // `draining` errors once a drain starts
            }
            ReadEvent::Eof => break SessionEnd::Eof,
        }
    };
    if drain_requested && end == SessionEnd::Eof {
        SessionEnd::DrainRequested
    } else {
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_splits_lines_and_accepts_final_unterminated_frame() {
        let data = b"{\"op\":\"ping\"}\n\n{\"op\":\"stats\"}".to_vec();
        let mut r = FrameReader::new(&data[..], 1024, 1000);
        assert_eq!(r.next_event(), ReadEvent::Frame("{\"op\":\"ping\"}".into()));
        // the blank line is skipped, not surfaced
        assert_eq!(
            r.next_event(),
            ReadEvent::Frame("{\"op\":\"stats\"}".into())
        );
        assert_eq!(r.next_event(), ReadEvent::Eof);
    }

    #[test]
    fn oversized_line_is_reported_once_and_discarded() {
        let mut data = vec![b'x'; 100];
        data.push(b'\n');
        data.extend_from_slice(b"{\"op\":\"ping\"}\n");
        let mut r = FrameReader::new(&data[..], 16, 1000);
        match r.next_event() {
            ReadEvent::Error(ProtocolError::Oversized { limit }) => assert_eq!(limit, 16),
            other => panic!("expected oversized, got {other:?}"),
        }
        // the session recovers: the next well-formed frame still arrives
        assert_eq!(r.next_event(), ReadEvent::Frame("{\"op\":\"ping\"}".into()));
        assert_eq!(r.next_event(), ReadEvent::Eof);
    }

    /// A reader that yields one partial fragment, then endless timeouts —
    /// the shape of a slow-loris client.
    struct Loris {
        fragment: Option<&'static [u8]>,
    }
    impl Read for Loris {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.fragment.take() {
                Some(f) => {
                    buf[..f.len()].copy_from_slice(f);
                    Ok(f.len())
                }
                None => Err(std::io::Error::from(std::io::ErrorKind::WouldBlock)),
            }
        }
    }

    #[test]
    fn slow_loris_partial_frame_stalls_out() {
        let mut r = FrameReader::new(
            Loris {
                fragment: Some(b"{\"op\":\"est"),
            },
            1024,
            30, // 30 ms stall budget
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match r.next_event() {
                ReadEvent::Tick => {
                    assert!(Instant::now() < deadline, "stall guard never fired");
                    std::thread::sleep(Duration::from_millis(5));
                }
                ReadEvent::Error(ProtocolError::Stalled { waited_ms }) => {
                    assert!(waited_ms >= 30);
                    break;
                }
                other => panic!("expected tick/stall, got {other:?}"),
            }
        }
    }

    #[test]
    fn idle_connection_ticks_without_stalling() {
        let mut r = FrameReader::new(Loris { fragment: None }, 1024, 10);
        std::thread::sleep(Duration::from_millis(30));
        // no partial frame pending: timeouts are ticks forever
        assert_eq!(r.next_event(), ReadEvent::Tick);
        assert_eq!(r.next_event(), ReadEvent::Tick);
    }
}
