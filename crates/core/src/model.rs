//! Phase 2 of the paper (Fig. 3): predictive-model generation and
//! evaluation, plus prediction for new CNN/GPU pairs without any hardware
//! execution.

use crate::features::{feature_names, feature_row, CnnProfile};
use gpu_sim::DeviceSpec;
use mlkit::{evaluate, Dataset, Model, RegressorKind, Scores};
use serde::{Deserialize, Serialize};

/// A trained cross-platform performance predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerformancePredictor {
    pub kind: RegressorKind,
    pub feature_names: Vec<String>,
    model: Model,
    /// Seconds spent in `fit`.
    pub train_seconds: f64,
}

impl PerformancePredictor {
    /// Train on a dataset whose rows follow [`feature_names`].
    pub fn train(dataset: &Dataset, kind: RegressorKind, seed: u64) -> Self {
        assert_eq!(
            dataset.feature_names,
            feature_names(),
            "dataset feature layout mismatch"
        );
        let t0 = std::time::Instant::now();
        let model = kind.fit(dataset, seed);
        Self {
            kind,
            feature_names: dataset.feature_names.clone(),
            model,
            train_seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// Predict the IPC of a profiled CNN on a device — the "no runtime
    /// dependency" path: static analysis + dynamic code analysis only.
    pub fn predict(&self, profile: &CnnProfile, dev: &DeviceSpec) -> f64 {
        self.model.predict_row(&feature_row(profile, dev))
    }

    /// Predict from a raw feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.model.predict_row(row)
    }

    /// Score on a hold-out set.
    pub fn evaluate(&self, test: &Dataset) -> Scores {
        evaluate(&self.model, test)
    }

    /// Feature importances (tree models), paired with names and sorted
    /// descending — the paper's Table III.
    pub fn feature_importances(&self) -> Option<Vec<(String, f64)>> {
        let imps = self.model.feature_importances()?;
        let mut out: Vec<(String, f64)> = self.feature_names.iter().cloned().zip(imps).collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        Some(out)
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("predictor serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// One row of the paper's Table II.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressorComparison {
    pub kind: RegressorKind,
    pub scores: Scores,
    pub train_seconds: f64,
}

/// Reproduce the paper's Table II protocol: a single seeded 70/30 split,
/// all five regressors trained on the same split.
pub fn compare_regressors(dataset: &Dataset, seed: u64) -> Vec<RegressorComparison> {
    let (train, test) = dataset.split(0.7, seed);
    RegressorKind::ALL
        .iter()
        .map(|&kind| {
            let p = PerformancePredictor::train(&train, kind, seed);
            RegressorComparison {
                kind,
                scores: p.evaluate(&test),
                train_seconds: p.train_seconds,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::build_corpus;
    use cnn_ir::ModelGraph;

    fn corpus() -> crate::pipeline::Corpus {
        let models: Vec<ModelGraph> = [
            "alexnet",
            "mobilenet",
            "MobileNetV2",
            "vgg16",
            "resnet50",
            "densenet121",
        ]
        .iter()
        .map(|n| cnn_ir::zoo::build(n).unwrap())
        .collect();
        build_corpus(&models, &gpu_sim::training_devices()).unwrap()
    }

    #[test]
    fn train_predict_evaluate_roundtrip() {
        let c = corpus();
        let (tr, te) = c.dataset.split(0.7, 42);
        let p = PerformancePredictor::train(&tr, RegressorKind::DecisionTree, 42);
        let s = p.evaluate(&te);
        assert!(s.mape.is_finite());
        // predicting a training model on a training device stays in the
        // plausible IPC range
        let prof = c.profile("vgg16").unwrap();
        let y = p.predict(prof, &gpu_sim::specs::gtx_1080_ti());
        assert!(y > 0.0 && y < 10.0, "{y}");
    }

    #[test]
    fn comparison_covers_all_five() {
        let c = corpus();
        let rows = compare_regressors(&c.dataset, 7);
        assert_eq!(rows.len(), 5);
        let kinds: Vec<_> = rows.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&RegressorKind::DecisionTree));
        assert!(kinds.contains(&RegressorKind::XgBoost));
    }

    #[test]
    fn importances_cover_paper_features() {
        let c = corpus();
        let p = PerformancePredictor::train(&c.dataset, RegressorKind::DecisionTree, 1);
        let imps = p.feature_importances().unwrap();
        assert_eq!(imps.len(), feature_names().len());
        // sorted descending
        for w in imps.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn json_roundtrip_preserves_predictions() {
        let c = corpus();
        let p = PerformancePredictor::train(&c.dataset, RegressorKind::DecisionTree, 1);
        let q = PerformancePredictor::from_json(&p.to_json()).unwrap();
        let prof = c.profile("alexnet").unwrap();
        let dev = gpu_sim::specs::v100s();
        assert_eq!(p.predict(prof, &dev), q.predict(prof, &dev));
    }
}
