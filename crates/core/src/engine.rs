//! The deadline-aware tiered estimation engine.
//!
//! An estimation request (`model`, `device`) walks a ladder of tiers in
//! fidelity order — detailed simulation, analytical model, trained
//! regressor, stale cache — and is served by the first tier that succeeds
//! within its time slice. Every hazard is contained and *classified*:
//!
//! - a wall-clock [`Deadline`] bounds the whole request; each tier gets an
//!   even share of the remainder, and on expiry its cancellation token is
//!   tripped so the cooperative loops in `ptx-analysis` and `gpu-sim`
//!   unwind within their documented check intervals;
//! - tier work runs on a worker thread under `catch_unwind`, so a panic
//!   is a recorded tier failure, not a batch abort;
//! - a per-tier [`CircuitBreaker`] (logical-tick clock, see
//!   [`crate::resilience`]) stops routing work to a tier that keeps
//!   failing, and re-probes it after a cooldown;
//! - batches are bounded: requests beyond [`EngineConfig::queue_capacity`]
//!   are shed immediately with an explicit `Overloaded` outcome.
//!
//! The result is the availability contract the chaos suite asserts: every
//! request returns a classified [`EstimateOutcome`] within deadline + ε,
//! no matter which tiers hang, panic, or crawl.

use crate::lifecycle::{Measurement, MeasurementLog, PredictorSlot};
use crate::model::PerformancePredictor;
use crate::pipeline::Corpus;
use crate::resilience::{BreakerConfig, BreakerState, CircuitBreaker, Deadline};
use crate::server::QosClass;
use gpu_sim::{ChaosInjector, ChaosProfile, SimMode, Simulator, TierFaultKind};
use ptx_analysis::ExecBudget;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Requests entering the engine, shed ones included — the invariant
/// `served + exhausted + overloaded == requests` holds per batch.
static ENGINE_REQUESTS: obs::LazyCounter = obs::LazyCounter::new("engine.requests");
static ENGINE_SERVED: obs::LazyCounter = obs::LazyCounter::new("engine.outcome.served");
static ENGINE_EXHAUSTED: obs::LazyCounter = obs::LazyCounter::new("engine.outcome.exhausted");
static ENGINE_OVERLOADED: obs::LazyCounter = obs::LazyCounter::new("engine.outcome.overloaded");
/// Requests shed at admission (same events as `engine.outcome.overloaded`,
/// kept separate so load-shedding is greppable on its own).
static ENGINE_SHED: obs::LazyCounter = obs::LazyCounter::new("engine.shed");
/// Stale-cache tier traffic; `lookups == hits + misses`.
static ENGINE_CACHE_LOOKUPS: obs::LazyCounter = obs::LazyCounter::new("engine.cache.lookups");
static ENGINE_CACHE_HITS: obs::LazyCounter = obs::LazyCounter::new("engine.cache.hits");
static ENGINE_CACHE_MISSES: obs::LazyCounter = obs::LazyCounter::new("engine.cache.misses");
/// Cache refreshes from live tier successes.
static ENGINE_CACHE_STORES: obs::LazyCounter = obs::LazyCounter::new("engine.cache.stores");
/// Cache entries seeded from a corpus.
static ENGINE_CACHE_WARMED: obs::LazyCounter = obs::LazyCounter::new("engine.cache.warmed");
/// End-to-end request wall time (duration histogram; count is
/// deterministic, bucket occupancy is not).
static ENGINE_REQUEST_US: obs::LazyHistogram = obs::LazyHistogram::new("engine.request_us");

/// Bump `engine.tier.<tier>.<suffix>`. Per-request frequency, so the
/// registry lookup (a mutex + BTreeMap probe) is fine here; the hot
/// simulator loops use static [`obs::LazyCounter`]s instead.
fn tier_count(tier: Tier, suffix: &str) {
    obs::global()
        .counter(&format!("engine.tier.{}.{suffix}", tier.name()))
        .inc();
}

/// Bump the per-tier failure counter for a classified failure. Panic and
/// error messages are collapsed to their kind so metric names stay a
/// small, fixed set.
fn tier_failure_count(tier: Tier, failure: &TierFailure) {
    let label = match failure {
        TierFailure::Timeout => "timeout",
        TierFailure::Panic(_) => "panic",
        TierFailure::Error(_) => "error",
        TierFailure::BreakerOpen => "breaker-open",
        TierFailure::CacheMiss => "cache-miss",
        TierFailure::DeadlineSpent => "deadline-spent",
    };
    obs::global()
        .counter(&format!("engine.tier.{}.failure.{label}", tier.name()))
        .inc();
}

/// Record a breaker state transition as `engine.breaker.<tier>.to-<state>`.
fn note_breaker_transition(tier: Tier, before: BreakerState, after: BreakerState) {
    if before != after {
        let state = match after {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        };
        obs::global()
            .counter(&format!("engine.breaker.{}.to-{state}", tier.name()))
            .inc();
    }
}

/// The estimation tiers, in descending fidelity (and cost) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Event-driven cycle-level simulation (the "hardware" stand-in).
    Detailed,
    /// Closed-form roofline estimate over exact instruction counts.
    Analytical,
    /// Trained-regressor prediction from DCA features (the paper's model).
    Regressor,
    /// Last known value for this (model, device), possibly stale.
    StaleCache,
}

impl Tier {
    /// The full ladder, fidelity-descending.
    pub const LADDER: [Tier; 4] = [
        Tier::Detailed,
        Tier::Analytical,
        Tier::Regressor,
        Tier::StaleCache,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Tier::Detailed => "detailed",
            Tier::Analytical => "analytical",
            Tier::Regressor => "regressor",
            Tier::StaleCache => "stale-cache",
        }
    }

    pub fn parse(s: &str) -> Result<Tier, String> {
        match s.trim() {
            "detailed" => Ok(Tier::Detailed),
            "analytical" => Ok(Tier::Analytical),
            "regressor" => Ok(Tier::Regressor),
            "stale-cache" | "cache" => Ok(Tier::StaleCache),
            other => Err(format!(
                "unknown tier `{other}` (want detailed|analytical|regressor|stale-cache)"
            )),
        }
    }

    /// Parse a comma-separated ladder spec, e.g. `detailed,analytical`.
    pub fn parse_ladder(spec: &str) -> Result<Vec<Tier>, String> {
        let tiers: Vec<Tier> = spec.split(',').map(Tier::parse).collect::<Result<_, _>>()?;
        if tiers.is_empty() {
            return Err("empty tier ladder".into());
        }
        Ok(tiers)
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why one tier failed to serve a request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TierFailure {
    /// The tier did not answer within its time slice; its cancellation
    /// token was tripped and the ladder moved on.
    Timeout,
    /// The tier panicked; the unwind was contained by the worker.
    Panic(String),
    /// The tier returned an error.
    Error(String),
    /// The tier's circuit breaker was open; no work was attempted.
    BreakerOpen,
    /// Stale-cache tier: no entry for this (model, device).
    CacheMiss,
    /// The deadline was already spent before this tier's turn.
    DeadlineSpent,
}

impl TierFailure {
    /// Stable one-token rendering, shared by [`EstimateOutcome::canonical`]
    /// and the server's wire payload.
    pub fn canonical(&self) -> String {
        match self {
            TierFailure::Timeout => "timeout".into(),
            TierFailure::Panic(m) => format!("panic({m})"),
            TierFailure::Error(m) => format!("error({m})"),
            TierFailure::BreakerOpen => "breaker-open".into(),
            TierFailure::CacheMiss => "cache-miss".into(),
            TierFailure::DeadlineSpent => "deadline-spent".into(),
        }
    }
}

/// One rung of the degradation path of a request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierAttempt {
    pub tier: Tier,
    pub failure: TierFailure,
}

/// Terminal classification of a request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OutcomeKind {
    /// Served by `tier` (possibly after degrading past earlier tiers).
    Served { tier: Tier },
    /// Every tier in the ladder failed; `attempts` says how.
    Exhausted,
    /// Shed at admission: the batch exceeded the engine's queue capacity.
    Overloaded,
}

/// The classified result of one estimation request. Every request gets
/// one — success, degradation, exhaustion and load-shedding all included.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EstimateOutcome {
    pub model: String,
    pub device: String,
    pub kind: OutcomeKind,
    /// Predicted IPC, when served.
    pub ipc: Option<f64>,
    /// Predicted latency in ms, when the serving tier computes one (the
    /// regressor predicts IPC only).
    pub latency_ms: Option<f64>,
    /// The degradation path: one entry per tier that failed before the
    /// request was served (or exhausted).
    pub attempts: Vec<TierAttempt>,
    /// Wall-clock time the request took. Excluded from [`canonical`]
    /// (wall time is the one legitimately nondeterministic field).
    pub elapsed_ms: f64,
    /// The predictor generation that served a regressor-tier answer (see
    /// [`crate::lifecycle::PredictorSlot`]); `None` for every other tier.
    /// Excluded from [`canonical`] so replay fixtures stay comparable
    /// across predictor-version histories.
    pub generation: Option<u64>,
}

impl EstimateOutcome {
    /// Deterministic one-line rendering: everything except wall time.
    /// Two runs with the same seed and inputs must produce byte-identical
    /// canonical strings — the chaos suite's determinism oracle.
    pub fn canonical(&self) -> String {
        let kind = match &self.kind {
            OutcomeKind::Served { tier } => format!("served:{tier}"),
            OutcomeKind::Exhausted => "exhausted".into(),
            OutcomeKind::Overloaded => "overloaded".into(),
        };
        let ipc = match self.ipc {
            Some(v) => format!("{v:.9}"),
            None => "-".into(),
        };
        let latency = match self.latency_ms {
            Some(v) => format!("{v:.6}"),
            None => "-".into(),
        };
        let path: Vec<String> = self
            .attempts
            .iter()
            .map(|a| format!("{}:{}", a.tier, a.failure.canonical()))
            .collect();
        format!(
            "{}@{} {kind} ipc={ipc} latency_ms={latency} path=[{}]",
            self.model,
            self.device,
            path.join(",")
        )
    }

    pub fn served(&self) -> bool {
        matches!(self.kind, OutcomeKind::Served { .. })
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Wall-clock budget per request, milliseconds.
    pub deadline_ms: u64,
    /// Tier ladder, tried in order.
    pub tiers: Vec<Tier>,
    /// Circuit-breaker tuning shared by all tiers.
    pub breaker: BreakerConfig,
    /// Chaos injection (tests and drills; `none` in production).
    pub chaos: ChaosProfile,
    /// Requests admitted per batch; the rest are shed as `Overloaded`.
    pub queue_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            deadline_ms: 2000,
            tiers: Tier::LADDER.to_vec(),
            breaker: BreakerConfig::default(),
            chaos: ChaosProfile::none(),
            queue_capacity: 64,
        }
    }
}

/// The resilient estimation engine. Processes requests sequentially so
/// breaker state evolves as a pure function of the request sequence (see
/// [`crate::resilience`] on determinism).
pub struct ResilientEngine {
    config: EngineConfig,
    breakers: HashMap<Tier, CircuitBreaker>,
    /// Logical clock: one tick per admitted request.
    tick: u64,
    /// (model, device) -> (ipc, latency_ms): warmed from a corpus and
    /// refreshed by every live success, read by the stale-cache tier.
    cache: HashMap<(String, String), (f64, Option<f64>)>,
    /// The regressor tier's predictor, behind a generation-stamped
    /// hot-swap slot. Shared across shards (and with the lifecycle
    /// trainer) so a promotion lands everywhere atomically.
    slot: Arc<PredictorSlot>,
    /// Where live-tier successes publish ground truth for the lifecycle
    /// trainer; `None` outside a lifecycle-enabled server.
    ground_truth: Option<Arc<MeasurementLog>>,
}

impl ResilientEngine {
    pub fn new(config: EngineConfig) -> Self {
        Self::with_shared_slot(config, Arc::new(PredictorSlot::new()))
    }

    /// An engine whose regressor tier reads an externally owned slot —
    /// every scheduler shard shares one, so a single promotion or
    /// rollback is visible to all of them mid-request.
    pub fn with_shared_slot(config: EngineConfig, slot: Arc<PredictorSlot>) -> Self {
        ResilientEngine {
            config,
            breakers: HashMap::new(),
            tick: 0,
            cache: HashMap::new(),
            slot,
            ground_truth: None,
        }
    }

    /// Attach a trained predictor for the regressor tier (without one the
    /// tier fails fast with a classified error).
    pub fn with_predictor(self, predictor: PerformancePredictor) -> Self {
        self.slot.install(Arc::new(predictor));
        self
    }

    /// Install an already-trained predictor as a new slot generation.
    /// Takes `&self`: the slot swaps atomically, so a retrained predictor
    /// can land on an engine shared behind an `Arc`, mid-request.
    pub fn set_predictor_arc(&self, predictor: Arc<PerformancePredictor>) {
        self.slot.install(predictor);
    }

    /// The hot-swap slot backing the regressor tier.
    pub fn predictor_slot(&self) -> &Arc<PredictorSlot> {
        &self.slot
    }

    /// Publish live-tier successes (detailed/analytical IPC with the
    /// paper's feature row) into `log` as ground truth for retraining.
    pub fn set_ground_truth_log(&mut self, log: Arc<MeasurementLog>) {
        self.ground_truth = Some(log);
    }

    /// Seed the stale-cache tier from a previously built corpus.
    pub fn warm_from_corpus(&mut self, corpus: &Corpus) {
        ENGINE_CACHE_WARMED.add(corpus.samples.len() as u64);
        for s in &corpus.samples {
            self.cache.insert(
                (s.model.clone(), s.device.clone()),
                (s.ipc, Some(s.latency_ms)),
            );
        }
    }

    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Current breaker state for a tier (`Closed` if it never saw traffic).
    pub fn breaker_state(&self, tier: Tier) -> BreakerState {
        self.breakers
            .get(&tier)
            .map(|b| b.state())
            .unwrap_or(BreakerState::Closed)
    }

    /// Estimate one (model, device) cell through the tier ladder.
    pub fn estimate(&mut self, model: &str, device: &str) -> EstimateOutcome {
        self.estimate_with_deadline(model, device, self.config.deadline_ms)
    }

    /// [`estimate`](Self::estimate) under an explicit per-request deadline
    /// (the server maps QoS classes to deadlines through this).
    pub fn estimate_with_deadline(
        &mut self,
        model: &str,
        device: &str,
        deadline_ms: u64,
    ) -> EstimateOutcome {
        self.estimate_inner(model, device, deadline_ms, false)
    }

    /// Live-tier-only estimation: the configured ladder minus the stale
    /// cache. This is the stale-while-revalidate refresh path — a served
    /// result updates the cache, and a failure leaves the stale entry in
    /// place rather than masking the miss with the entry being refreshed.
    pub fn estimate_live(
        &mut self,
        model: &str,
        device: &str,
        deadline_ms: u64,
    ) -> EstimateOutcome {
        self.estimate_inner(model, device, deadline_ms, true)
    }

    fn estimate_inner(
        &mut self,
        model: &str,
        device: &str,
        deadline_ms: u64,
        skip_stale_cache: bool,
    ) -> EstimateOutcome {
        self.tick += 1;
        ENGINE_REQUESTS.inc();
        let _request_span = ENGINE_REQUEST_US.span();
        let tick = self.tick;
        let deadline = Deadline::in_ms(deadline_ms);
        let injector = ChaosInjector::new(self.config.chaos.clone());
        let tiers: Vec<Tier> = self
            .config
            .tiers
            .iter()
            .copied()
            .filter(|t| !(skip_stale_cache && *t == Tier::StaleCache))
            .collect();
        let mut attempts: Vec<TierAttempt> = Vec::new();

        for (i, &tier) in tiers.iter().enumerate() {
            // the stale cache is the in-process floor of the ladder: no
            // worker, no breaker, immune to chaos, effectively instant
            if tier == Tier::StaleCache {
                tier_count(tier, "attempts");
                ENGINE_CACHE_LOOKUPS.inc();
                match self.cache.get(&(model.to_string(), device.to_string())) {
                    Some(&(ipc, latency_ms)) => {
                        ENGINE_CACHE_HITS.inc();
                        tier_count(tier, "success");
                        return self.outcome(
                            model,
                            device,
                            OutcomeKind::Served { tier },
                            Some(ipc),
                            latency_ms,
                            attempts,
                            &deadline,
                            None,
                        );
                    }
                    None => {
                        ENGINE_CACHE_MISSES.inc();
                        let failure = TierFailure::CacheMiss;
                        tier_failure_count(tier, &failure);
                        attempts.push(TierAttempt { tier, failure });
                        continue;
                    }
                }
            }

            if deadline.expired() {
                let failure = TierFailure::DeadlineSpent;
                tier_count(tier, "attempts");
                tier_failure_count(tier, &failure);
                attempts.push(TierAttempt { tier, failure });
                continue;
            }

            let breaker = self
                .breakers
                .entry(tier)
                .or_insert_with(|| CircuitBreaker::new(self.config.breaker.clone()));
            let state_before = breaker.state();
            let admitted = breaker.admit(tick);
            note_breaker_transition(tier, state_before, breaker.state());
            tier_count(tier, "attempts");
            if !admitted {
                let failure = TierFailure::BreakerOpen;
                tier_failure_count(tier, &failure);
                attempts.push(TierAttempt { tier, failure });
                continue;
            }

            let slice = deadline.tier_slice(tiers.len() - i);
            let fault = injector.tier_fault(model, device, tier.name());
            // one atomic load pins this request to a single predictor
            // generation, even if a promotion lands mid-flight
            let (generation, predictor) = if tier == Tier::Regressor {
                let (g, p) = self.slot.load();
                (Some(g), p)
            } else {
                (None, None)
            };
            let tier_start = std::time::Instant::now();
            let result = run_tier(
                tier,
                model,
                device,
                predictor,
                self.ground_truth.clone(),
                fault,
                self.config.chaos.slow_ms,
                slice,
            );
            obs::global()
                .histogram(&format!("engine.tier.{}.latency_us", tier.name()))
                .record_duration(tier_start.elapsed());
            match result {
                Ok((ipc, latency_ms)) => {
                    let breaker = self.breakers.get_mut(&tier).expect("breaker exists");
                    let state_before = breaker.state();
                    breaker.record(tick, true);
                    note_breaker_transition(tier, state_before, breaker.state());
                    tier_count(tier, "success");
                    self.cache
                        .insert((model.to_string(), device.to_string()), (ipc, latency_ms));
                    ENGINE_CACHE_STORES.inc();
                    return self.outcome(
                        model,
                        device,
                        OutcomeKind::Served { tier },
                        Some(ipc),
                        latency_ms,
                        attempts,
                        &deadline,
                        generation,
                    );
                }
                Err(failure) => {
                    let breaker = self.breakers.get_mut(&tier).expect("breaker exists");
                    let state_before = breaker.state();
                    breaker.record(tick, false);
                    note_breaker_transition(tier, state_before, breaker.state());
                    tier_failure_count(tier, &failure);
                    attempts.push(TierAttempt { tier, failure });
                }
            }
        }

        self.outcome(
            model,
            device,
            OutcomeKind::Exhausted,
            None,
            None,
            attempts,
            &deadline,
            None,
        )
    }

    /// Process a batch sequentially. At most
    /// [`EngineConfig::queue_capacity`] requests are admitted; the rest
    /// are shed immediately with `Overloaded` — an overloaded engine
    /// answers fast rather than queueing into its own deadline. All
    /// requests share one QoS class here, so the shed victims are simply
    /// the latest arrivals (see [`estimate_batch_qos`](Self::estimate_batch_qos)
    /// for class-aware shedding).
    pub fn estimate_batch(&mut self, requests: &[(String, String)]) -> Vec<EstimateOutcome> {
        let classed: Vec<(String, String, QosClass)> = requests
            .iter()
            .map(|(m, d)| (m.clone(), d.clone(), QosClass::Batch))
            .collect();
        self.estimate_batch_qos(&classed)
    }

    /// Class-aware batch processing: when the batch exceeds the queue
    /// capacity, the excess is shed by **QoS priority** — best-effort
    /// requests are dropped before batch, batch before interactive, and
    /// within a class the latest arrivals go first. Admitted requests are
    /// still processed in arrival order, so breaker trajectories stay a
    /// pure function of the admitted sequence.
    pub fn estimate_batch_qos(
        &mut self,
        requests: &[(String, String, QosClass)],
    ) -> Vec<EstimateOutcome> {
        let shed = self.shed_set(requests);
        requests
            .iter()
            .enumerate()
            .map(|(i, (model, device, class))| {
                if shed.contains(&i) {
                    ENGINE_REQUESTS.inc();
                    ENGINE_OVERLOADED.inc();
                    ENGINE_SHED.inc();
                    obs::global()
                        .counter(&format!("engine.shed.{}", class.name()))
                        .inc();
                    EstimateOutcome {
                        model: model.clone(),
                        device: device.clone(),
                        kind: OutcomeKind::Overloaded,
                        ipc: None,
                        latency_ms: None,
                        attempts: Vec::new(),
                        elapsed_ms: 0.0,
                        generation: None,
                    }
                } else {
                    self.estimate(model, device)
                }
            })
            .collect()
    }

    /// Pick which batch indices to shed: lowest-priority class first,
    /// latest arrival first within a class.
    fn shed_set(
        &self,
        requests: &[(String, String, QosClass)],
    ) -> std::collections::HashSet<usize> {
        let excess = requests.len().saturating_sub(self.config.queue_capacity);
        let mut victims: Vec<usize> = (0..requests.len()).collect();
        // sort so the best victims come first: lower priority (higher
        // rank) before higher, later arrival before earlier
        victims.sort_by_key(|&i| {
            (
                std::cmp::Reverse(requests[i].2.priority()),
                std::cmp::Reverse(i),
            )
        });
        victims.into_iter().take(excess).collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn outcome(
        &self,
        model: &str,
        device: &str,
        kind: OutcomeKind,
        ipc: Option<f64>,
        latency_ms: Option<f64>,
        attempts: Vec<TierAttempt>,
        deadline: &Deadline,
        generation: Option<u64>,
    ) -> EstimateOutcome {
        match &kind {
            OutcomeKind::Served { tier } => {
                ENGINE_SERVED.inc();
                obs::global()
                    .counter(&format!("engine.outcome.served.{}", tier.name()))
                    .inc();
            }
            OutcomeKind::Exhausted => ENGINE_EXHAUSTED.inc(),
            // shed requests never reach here; counted in estimate_batch
            OutcomeKind::Overloaded => ENGINE_OVERLOADED.inc(),
        }
        EstimateOutcome {
            model: model.to_string(),
            device: device.to_string(),
            kind,
            ipc,
            latency_ms,
            attempts,
            elapsed_ms: deadline.elapsed().as_secs_f64() * 1e3,
            generation,
        }
    }
}

/// Run one tier on a worker thread under `catch_unwind`, bounded by
/// `slice`. On timeout the tier's cancellation token is tripped and the
/// worker is abandoned — the cooperative cancellation contracts of
/// `ptx-analysis` ([`ptx_analysis::CANCEL_CHECK_INTERVAL`]) and `gpu-sim`
/// ([`gpu_sim::SIM_CANCEL_CHECK_EVENTS`]) guarantee it unwinds and exits
/// shortly after, so abandoned workers cannot pile up.
#[allow(clippy::too_many_arguments)]
fn run_tier(
    tier: Tier,
    model: &str,
    device: &str,
    predictor: Option<Arc<PerformancePredictor>>,
    ground_truth: Option<Arc<MeasurementLog>>,
    fault: TierFaultKind,
    slow_ms: u64,
    slice: Duration,
) -> Result<(f64, Option<f64>), TierFailure> {
    let cancel = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel();
    let worker_cancel = cancel.clone();
    let model = model.to_string();
    let device = device.to_string();
    let spawned = std::thread::Builder::new()
        .name(format!("tier-{}", tier.name()))
        .spawn(move || {
            let out = catch_unwind(AssertUnwindSafe(|| {
                tier_work(
                    tier,
                    &model,
                    &device,
                    predictor.as_deref(),
                    ground_truth.as_deref(),
                    fault,
                    slow_ms,
                    &worker_cancel,
                )
            }));
            let _ = tx.send(out);
        });
    if spawned.is_err() {
        return Err(TierFailure::Error("worker spawn failed".into()));
    }
    match rx.recv_timeout(slice) {
        Ok(Ok(Ok(value))) => Ok(value),
        Ok(Ok(Err(msg))) => Err(TierFailure::Error(msg)),
        Ok(Err(payload)) => Err(TierFailure::Panic(panic_message(payload.as_ref()))),
        Err(mpsc::RecvTimeoutError::Timeout) => {
            cancel.store(true, Ordering::Relaxed);
            Err(TierFailure::Timeout)
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            Err(TierFailure::Panic("worker died without reporting".into()))
        }
    }
}

// takes the unboxed dyn reference: coercing `&Box<dyn Any>` here would
// downcast against the Box itself and always miss
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".into()
    }
}

/// The actual work of one tier, run on the worker thread. Injected chaos
/// is acted out here: a `Hang` spins on the cancellation token, a `Panic`
/// unwinds for real, a `Slow` sleeps (cancellably) before working.
#[allow(clippy::too_many_arguments)]
fn tier_work(
    tier: Tier,
    model: &str,
    device: &str,
    predictor: Option<&PerformancePredictor>,
    ground_truth: Option<&MeasurementLog>,
    fault: TierFaultKind,
    slow_ms: u64,
    cancel: &Arc<AtomicBool>,
) -> Result<(f64, Option<f64>), String> {
    match fault {
        TierFaultKind::Hang => {
            while !cancel.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1));
            }
            return Err("injected hang, cancelled by deadline".into());
        }
        TierFaultKind::Panic => panic!("chaos: injected panic in {} tier", tier.name()),
        TierFaultKind::Slow => {
            for _ in 0..slow_ms {
                if cancel.load(Ordering::Relaxed) {
                    return Err("injected slowdown, cancelled by deadline".into());
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        TierFaultKind::None => {}
    }

    let dev =
        gpu_sim::device_by_name(device).ok_or_else(|| format!("unknown device `{device}`"))?;
    let graph = cnn_ir::zoo::build_any(model).ok_or_else(|| format!("unknown model `{model}`"))?;
    let budget = ExecBudget::default().with_cancel(cancel.clone());
    match tier {
        Tier::Detailed | Tier::Analytical => {
            // lower for the *request's* device (a hardcoded "sm_61" here
            // used to mis-stamp V100S/A100 plans) and reuse the memoized
            // analysis across requests and devices sharing a target
            let analyzed = crate::analysis_cache::analyze_cached(&graph, &dev.sm_target(), &budget)
                .map_err(|e| e.to_string())?;
            let mode = if tier == Tier::Detailed {
                SimMode::Detailed
            } else {
                SimMode::Analytical
            };
            let report = Simulator::new(dev.clone(), mode)
                .simulate_plan_budgeted(&analyzed.plan, &budget)
                .map_err(|e| e.to_string())?;
            // a live-tier success *is* ground truth: publish it with the
            // same feature row the regressor tier predicts from, so the
            // lifecycle trainer journals exactly what predict consumes
            if let Some(log) = ground_truth {
                if let Ok(profiled) =
                    crate::analysis_cache::profile_model_cached_budgeted(&graph, &budget)
                {
                    log.push(Measurement {
                        model: model.to_string(),
                        device: device.to_string(),
                        row: crate::features::feature_row(&profiled.profile, &dev),
                        ipc: report.ipc,
                    });
                }
            }
            Ok((report.ipc, Some(report.latency_ms)))
        }
        Tier::Regressor => {
            let predictor = predictor.ok_or("no trained predictor attached")?;
            let analyzed = crate::analysis_cache::profile_model_cached_budgeted(&graph, &budget)
                .map_err(|e| e.to_string())?;
            Ok((predictor.predict(&analyzed.profile, &dev), None))
        }
        Tier::StaleCache => unreachable!("stale cache is served inline by the engine"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_parses() {
        assert_eq!(
            Tier::parse_ladder("detailed,analytical").unwrap(),
            vec![Tier::Detailed, Tier::Analytical]
        );
        assert_eq!(Tier::parse_ladder("cache").unwrap(), vec![Tier::StaleCache]);
        assert!(Tier::parse_ladder("warp-speed").is_err());
    }

    #[test]
    fn healthy_engine_serves_from_top_tier() {
        let mut engine = ResilientEngine::new(EngineConfig {
            deadline_ms: 30_000,
            tiers: vec![Tier::Analytical, Tier::StaleCache],
            ..EngineConfig::default()
        });
        let out = engine.estimate("mobilenet", "Quadro P1000");
        assert_eq!(
            out.kind,
            OutcomeKind::Served {
                tier: Tier::Analytical
            },
            "path: {:?}",
            out.attempts
        );
        assert!(out.ipc.unwrap() > 0.0);
        // the success refreshed the cache: a cache-only ladder now serves
        let mut cached = ResilientEngine::new(EngineConfig {
            tiers: vec![Tier::StaleCache],
            ..EngineConfig::default()
        });
        cached.cache = engine.cache.clone();
        let hit = cached.estimate("mobilenet", "Quadro P1000");
        assert_eq!(
            hit.kind,
            OutcomeKind::Served {
                tier: Tier::StaleCache
            }
        );
        assert_eq!(hit.ipc, out.ipc);
    }

    #[test]
    fn simulation_tiers_lower_for_the_request_device() {
        // regression: the detailed/analytical tiers used to lower with a
        // hardcoded "sm_61" even when the request targeted an sm_70 device
        let mut engine = ResilientEngine::new(EngineConfig {
            deadline_ms: 60_000,
            tiers: vec![Tier::Analytical],
            ..EngineConfig::default()
        });
        let out = engine.estimate("mobilenet", "V100S");
        assert_eq!(
            out.kind,
            OutcomeKind::Served {
                tier: Tier::Analytical
            },
            "path: {:?}",
            out.attempts
        );
        let dev = gpu_sim::device_by_name("V100S").unwrap();
        assert_eq!(dev.sm_target(), "sm_70");
        let graph = cnn_ir::zoo::build_any("mobilenet").unwrap();
        let analyzed = crate::analysis_cache::peek_cached(&graph, &dev.sm_target())
            .expect("the tier must have populated the analysis cache for sm_70");
        assert_eq!(analyzed.plan.module.target, dev.sm_target());
    }

    #[test]
    fn unknown_model_exhausts_with_classified_errors() {
        let mut engine = ResilientEngine::new(EngineConfig {
            deadline_ms: 10_000,
            tiers: vec![Tier::Analytical, Tier::StaleCache],
            ..EngineConfig::default()
        });
        let out = engine.estimate("not-a-model", "V100S");
        assert_eq!(out.kind, OutcomeKind::Exhausted);
        assert_eq!(out.attempts.len(), 2);
        assert!(
            matches!(&out.attempts[0].failure, TierFailure::Error(m) if m.contains("unknown model"))
        );
        assert_eq!(out.attempts[1].failure, TierFailure::CacheMiss);
    }

    #[test]
    fn batch_sheds_load_beyond_capacity() {
        let mut engine = ResilientEngine::new(EngineConfig {
            queue_capacity: 1,
            tiers: vec![Tier::StaleCache],
            ..EngineConfig::default()
        });
        let reqs: Vec<(String, String)> = (0..3)
            .map(|i| (format!("m{i}"), "V100S".to_string()))
            .collect();
        let outs = engine.estimate_batch(&reqs);
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0].kind, OutcomeKind::Exhausted); // admitted, cache miss
        assert_eq!(outs[1].kind, OutcomeKind::Overloaded);
        assert_eq!(outs[2].kind, OutcomeKind::Overloaded);
    }

    #[test]
    fn qos_batch_sheds_best_effort_before_interactive() {
        // regression: shedding used to be by arrival index alone, so an
        // interactive request arriving late was dropped while best-effort
        // work ahead of it was served
        let mut engine = ResilientEngine::new(EngineConfig {
            queue_capacity: 2,
            tiers: vec![Tier::StaleCache],
            ..EngineConfig::default()
        });
        let reqs: Vec<(String, String, QosClass)> = vec![
            ("m0".into(), "V100S".into(), QosClass::BestEffort),
            ("m1".into(), "V100S".into(), QosClass::Batch),
            ("m2".into(), "V100S".into(), QosClass::Interactive),
            ("m3".into(), "V100S".into(), QosClass::BestEffort),
        ];
        let outs = engine.estimate_batch_qos(&reqs);
        assert_eq!(outs.len(), 4);
        // the two best-effort requests are the victims, latest first;
        // batch and interactive are admitted regardless of arrival order
        assert_eq!(outs[0].kind, OutcomeKind::Overloaded);
        assert_ne!(outs[1].kind, OutcomeKind::Overloaded);
        assert_ne!(outs[2].kind, OutcomeKind::Overloaded);
        assert_eq!(outs[3].kind, OutcomeKind::Overloaded);
    }

    #[test]
    fn qos_batch_sheds_latest_first_within_class() {
        let mut engine = ResilientEngine::new(EngineConfig {
            queue_capacity: 1,
            tiers: vec![Tier::StaleCache],
            ..EngineConfig::default()
        });
        let reqs: Vec<(String, String, QosClass)> = (0..3)
            .map(|i| (format!("m{i}"), "V100S".into(), QosClass::Interactive))
            .collect();
        let outs = engine.estimate_batch_qos(&reqs);
        assert_ne!(outs[0].kind, OutcomeKind::Overloaded);
        assert_eq!(outs[1].kind, OutcomeKind::Overloaded);
        assert_eq!(outs[2].kind, OutcomeKind::Overloaded);
    }

    #[test]
    fn estimate_live_skips_the_stale_cache() {
        let mut engine = ResilientEngine::new(EngineConfig {
            tiers: vec![Tier::StaleCache],
            ..EngineConfig::default()
        });
        engine
            .cache
            .insert(("m".to_string(), "d".to_string()), (1.0, None));
        // the cached ladder serves, the live ladder has nothing left
        assert!(engine.estimate("m", "d").served());
        let live = engine.estimate_live("m", "d", 1_000);
        assert_eq!(live.kind, OutcomeKind::Exhausted);
        assert!(live.attempts.is_empty(), "skipped tiers leave no attempts");
    }

    #[test]
    fn set_predictor_arc_works_on_shared_engine() {
        // regression: set_predictor_arc used to take &mut self, so a
        // retrained predictor could not be installed on an engine shared
        // behind an Arc without rebuilding the scheduler
        use crate::features::feature_names;
        let mut d = mlkit::Dataset::new(feature_names());
        let nf = d.feature_names.len();
        for i in 0..8 {
            let mut row = vec![0.0; nf];
            row[0] = i as f64;
            d.push(format!("r{i}"), row, 1.0 + i as f64);
        }
        let p = Arc::new(PerformancePredictor::train(
            &d,
            mlkit::RegressorKind::DecisionTree,
            1,
        ));
        let engine = Arc::new(ResilientEngine::new(EngineConfig::default()));
        engine.set_predictor_arc(Arc::clone(&p));
        assert_eq!(engine.predictor_slot().generation(), 1);
        engine.set_predictor_arc(p);
        assert_eq!(engine.predictor_slot().generation(), 2);
    }

    #[test]
    fn canonical_excludes_wall_time() {
        let mut a = EstimateOutcome {
            model: "m".into(),
            device: "d".into(),
            kind: OutcomeKind::Served {
                tier: Tier::Detailed,
            },
            ipc: Some(1.25),
            latency_ms: Some(3.5),
            attempts: vec![TierAttempt {
                tier: Tier::Detailed,
                failure: TierFailure::Timeout,
            }],
            elapsed_ms: 12.0,
            generation: None,
        };
        let c1 = a.canonical();
        a.elapsed_ms = 99.0;
        a.generation = Some(3);
        assert_eq!(c1, a.canonical());
        assert!(c1.contains("served:detailed"));
        assert!(c1.contains("detailed:timeout"));
    }
}
