//! # cnnperf-core — the paper's contribution
//!
//! Fast and accurate ML-based performance (IPC) estimation of CNNs for
//! GPGPUs, assembled from the substrate crates:
//!
//! 1. **Feature extraction** ([`features`]): static analysis (trainable
//!    parameters) + dynamic code analysis (exact executed-PTX-instruction
//!    count) + GPGPU architectural features.
//! 2. **Training-dataset creation** ([`pipeline`]): the 32-CNN zoo
//!    profiled on the training GPUs by the simulator-backed `nvprof`
//!    stand-in.
//! 3. **Predictive model** ([`model`]): five candidate regressors, the
//!    Decision Tree selected as in the paper; cross-platform prediction
//!    from device features.
//! 4. **Design-space exploration** ([`dse`]): rank `n` GPUs for a CNN in
//!    `T_est = t_dca + n * t_pm` instead of `T_measur = t_p * n`.
//!
//! ```no_run
//! use cnnperf_core::prelude::*;
//!
//! let corpus = build_paper_corpus().unwrap();
//! let (train, test) = corpus.dataset.split(0.7, 42);
//! let predictor = PerformancePredictor::train(&train, RegressorKind::DecisionTree, 42);
//! let scores = predictor.evaluate(&test);
//! println!("MAPE {:.2}%  R2 {:.2}", scores.mape, scores.r2);
//! ```

pub mod analysis_cache;
pub mod cache;
pub mod dse;
pub mod engine;
pub mod features;
pub mod journal;
pub mod lifecycle;
pub mod model;
pub mod modelstore;
pub mod pipeline;
pub mod report;
pub mod resilience;
pub mod server;
pub mod supervise;

pub use analysis_cache::{
    analyze_cached, cache_stats, clear_analysis_cache, model_content_hash, peek_cached,
    profile_model_cached, profile_model_cached_budgeted, AnalyzedModel, ANALYSIS_CACHE_CAPACITY,
};
pub use cache::{load_corpus, store_corpus, CacheMiss, CORPUS_CACHE_SCHEMA};
pub use dse::{naive_profile_time, rank_devices, rank_devices_profiled, DseOutcome};
pub use engine::{
    EngineConfig, EstimateOutcome, OutcomeKind, ResilientEngine, Tier, TierAttempt, TierFailure,
};
pub use features::{
    feature_names, feature_row, profile_model, profile_model_budgeted, profile_model_report,
    profile_model_with_target, CnnProfile, ProfileError, DEFAULT_SM_TARGET,
};
pub use journal::{
    BuildMeta, CellOutcome, Journal, JournalError, JournalRecord, Replay, JOURNAL_SCHEMA,
    SEGMENT_RECORDS,
};
pub use lifecycle::{
    family_of, ColdStart, IngestReport, LifecycleConfig, LifecycleManager, Measurement,
    MeasurementLog, PredictorSlot, RetrainOutcome, SwapRace,
};
pub use model::{compare_regressors, PerformancePredictor, RegressorComparison};
pub use modelstore::{
    ModelStore, ScanReport, SnapshotInfo, SnapshotMeta, StoreError, SNAPSHOT_SCHEMA,
};
pub use pipeline::{
    build_corpus, build_corpus_robust, build_corpus_robust_with, build_paper_corpus,
    build_paper_corpus_robust, BuildOptions, CellReport, CellStatus, Corpus, CorpusReport,
    RobustConfig, SampleMeta,
};
pub use resilience::{BreakerConfig, BreakerState, CircuitBreaker, Deadline};
pub use server::{
    DrainController, DrainReport, DrainState, QosClass, QosPolicy, Scheduler, ServeError, Server,
    ServerConfig, SessionEnd, SubmitError,
};
pub use supervise::{CellGuard, SuperviseConfig, Supervisor};

/// Convenient glob import for examples and benches.
pub mod prelude {
    pub use crate::analysis_cache::{analyze_cached, profile_model_cached, AnalyzedModel};
    pub use crate::cache::{load_corpus, store_corpus, CacheMiss};
    pub use crate::dse::{naive_profile_time, rank_devices, rank_devices_profiled};
    pub use crate::engine::{
        EngineConfig, EstimateOutcome, OutcomeKind, ResilientEngine, Tier, TierFailure,
    };
    pub use crate::features::{feature_names, feature_row, profile_model, CnnProfile};
    pub use crate::model::{compare_regressors, PerformancePredictor};
    pub use crate::pipeline::{
        build_corpus, build_corpus_robust, build_paper_corpus, build_paper_corpus_robust,
        CellStatus, Corpus, CorpusReport, RobustConfig,
    };
    pub use crate::report::{fixed, pct, thousands, Align, Table};
    pub use crate::resilience::{BreakerConfig, BreakerState, CircuitBreaker, Deadline};
    pub use mlkit::{RegressorKind, Scores};
}
