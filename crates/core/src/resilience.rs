//! Resilience primitives for the tiered estimation engine: wall-clock
//! [`Deadline`]s that bound a whole request, and per-tier [`CircuitBreaker`]s
//! that stop sending work to a tier that keeps failing.
//!
//! The breaker's clock is **logical**, not wall time: it advances one tick
//! per estimation request. That makes the whole state machine a pure
//! function of the request sequence, so a fixed-seed chaos run replays the
//! exact same open/half-open/closed trajectory byte for byte — the
//! determinism guarantee the chaos suite asserts. Wall time only enters
//! through [`Deadline`], which bounds *how long* a request may run, never
//! *which* tier it is routed to.

use std::time::{Duration, Instant};

/// A wall-clock budget for one estimation request. Created when the
/// request is admitted; every tier the request visits gets a slice of
/// whatever remains.
#[derive(Debug, Clone)]
pub struct Deadline {
    start: Instant,
    budget: Duration,
}

impl Deadline {
    /// A deadline `ms` milliseconds from now.
    pub fn in_ms(ms: u64) -> Self {
        Deadline {
            start: Instant::now(),
            budget: Duration::from_millis(ms),
        }
    }

    pub fn budget(&self) -> Duration {
        self.budget
    }

    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Time left before expiry; zero once expired (never negative).
    pub fn remaining(&self) -> Duration {
        self.budget.saturating_sub(self.start.elapsed())
    }

    pub fn expired(&self) -> bool {
        self.remaining() == Duration::ZERO
    }

    /// The time slice a tier may use: the remainder split evenly over the
    /// tiers still eligible to run, so an early tier cannot starve the
    /// fallbacks behind it. With one tier left, it gets everything.
    pub fn tier_slice(&self, tiers_remaining: usize) -> Duration {
        self.remaining() / tiers_remaining.max(1) as u32
    }
}

/// Circuit breaker states, the classic three.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all requests admitted, outcomes recorded in the window.
    Closed,
    /// Tripped: requests are rejected until the cooldown elapses.
    Open,
    /// Probing: exactly [`BreakerConfig::probe_quota`] requests are
    /// admitted; all must succeed to close, any failure reopens.
    HalfOpen,
}

/// Tuning knobs for a [`CircuitBreaker`]. Ticks are logical request
/// sequence numbers (see module docs), not wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Rolling window of recent outcomes the failure rate is computed over.
    pub window: usize,
    /// Open when `failures / window_len >= failure_threshold`.
    pub failure_threshold: f64,
    /// Never open before this many outcomes are in the window (a single
    /// early failure is not a trend).
    pub min_samples: usize,
    /// Ticks to stay open before probing again.
    pub cooldown_ticks: u64,
    /// Probes admitted in half-open before deciding.
    pub probe_quota: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 8,
            failure_threshold: 0.5,
            min_samples: 4,
            cooldown_ticks: 16,
            probe_quota: 2,
        }
    }
}

/// Per-tier circuit breaker over logical ticks.
///
/// Protocol per request: call [`admit`](Self::admit) with the current
/// tick; if it returns `true`, run the tier and [`record`](Self::record)
/// the outcome at the same tick. The engine processes requests
/// sequentially, so admits and records interleave deterministically.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Recent outcomes, `true` = success; bounded by `config.window`.
    window: std::collections::VecDeque<bool>,
    /// Tick at which the breaker last opened.
    opened_at: u64,
    /// Probes admitted in the current half-open episode.
    probes_admitted: u32,
    /// Probes resolved (recorded) in the current half-open episode.
    probes_resolved: u32,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            window: std::collections::VecDeque::new(),
            opened_at: 0,
            probes_admitted: 0,
            probes_resolved: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// May a request enter this tier at `tick`? An open breaker whose
    /// cooldown has elapsed transitions to half-open here, which is why a
    /// breaker can never be stuck open: admission at any
    /// `tick >= opened_at + cooldown_ticks` starts a probe episode.
    pub fn admit(&mut self, tick: u64) -> bool {
        if self.state == BreakerState::Open
            && tick >= self.opened_at.saturating_add(self.config.cooldown_ticks)
        {
            self.state = BreakerState::HalfOpen;
            self.probes_admitted = 0;
            self.probes_resolved = 0;
        }
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if self.probes_admitted < self.config.probe_quota {
                    self.probes_admitted += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record the outcome of an admitted request.
    pub fn record(&mut self, tick: u64, success: bool) {
        match self.state {
            BreakerState::Closed => {
                self.window.push_back(success);
                while self.window.len() > self.config.window {
                    self.window.pop_front();
                }
                if self.window.len() >= self.config.min_samples {
                    let failures = self.window.iter().filter(|s| !**s).count();
                    if failures as f64 / self.window.len() as f64 >= self.config.failure_threshold {
                        self.open_at(tick);
                    }
                }
            }
            BreakerState::HalfOpen => {
                self.probes_resolved += 1;
                if !success {
                    self.open_at(tick);
                } else if self.probes_resolved >= self.config.probe_quota {
                    // full probe quota succeeded: healthy again, with a
                    // clean slate so stale failures don't re-trip it
                    self.state = BreakerState::Closed;
                    self.window.clear();
                }
            }
            // a straggler outcome from before the breaker opened; the
            // episode that produced it is already summarized by the open
            BreakerState::Open => {}
        }
    }

    fn open_at(&mut self, tick: u64) {
        self.state = BreakerState::Open;
        self.opened_at = tick;
        self.window.clear();
        self.probes_admitted = 0;
        self.probes_resolved = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driven_open(cfg: BreakerConfig) -> (CircuitBreaker, u64) {
        let mut b = CircuitBreaker::new(cfg);
        let mut tick = 0;
        while b.state() != BreakerState::Open {
            tick += 1;
            assert!(b.admit(tick), "closed breaker must admit");
            b.record(tick, false);
            assert!(tick < 100, "breaker never opened");
        }
        (b, tick)
    }

    #[test]
    fn opens_after_failure_rate_crossed() {
        let cfg = BreakerConfig::default();
        let min = cfg.min_samples as u64;
        let (_, opened_tick) = driven_open(cfg);
        assert_eq!(opened_tick, min, "opens exactly at min_samples failures");
    }

    #[test]
    fn open_rejects_until_cooldown() {
        let cfg = BreakerConfig::default();
        let cooldown = cfg.cooldown_ticks;
        let (mut b, t0) = driven_open(cfg);
        for t in t0 + 1..t0 + cooldown {
            assert!(!b.admit(t), "tick {t} admitted during cooldown");
        }
        assert!(b.admit(t0 + cooldown), "cooldown elapsed, probe refused");
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_failure_reopens_success_closes() {
        let cfg = BreakerConfig::default();
        let cooldown = cfg.cooldown_ticks;
        let quota = cfg.probe_quota;
        let (mut b, t0) = driven_open(cfg);
        // failed probe -> reopen with fresh cooldown
        let t1 = t0 + cooldown;
        assert!(b.admit(t1));
        b.record(t1, false);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit(t1 + 1), "cooldown must restart after failed probe");
        // quota successful probes -> closed
        let t2 = t1 + cooldown;
        for i in 0..quota as u64 {
            assert!(b.admit(t2 + i));
            b.record(t2 + i, true);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit(t2 + quota as u64));
    }

    #[test]
    fn mixed_traffic_below_threshold_stays_closed() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        // alternating success/failure = 50%... threshold is >= 0.5, so use
        // 1 failure in 3 to stay clearly below
        for t in 1..100u64 {
            assert!(b.admit(t));
            b.record(t, t % 3 != 0);
            assert_eq!(b.state(), BreakerState::Closed, "tripped at tick {t}");
        }
    }
}
