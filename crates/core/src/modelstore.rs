//! Crash-safe versioned predictor snapshot store.
//!
//! The lifecycle subsystem (see [`crate::lifecycle`]) promotes retrained
//! predictors at runtime; this module makes those versions durable so a
//! restarted `serve` cold-starts from the newest valid snapshot instead
//! of retraining. The store borrows the corpus cache's defensive envelope
//! (see [`crate::cache`]) on both ends:
//!
//! - **Writes** serialize the predictor into an envelope carrying a schema
//!   version and an FNV-1a checksum, write it to a sibling temp file, and
//!   publish with an atomic `rename` — a process SIGKILLed mid-write
//!   leaves only a temp file that the next scan sweeps.
//! - **Reads** validate the envelope; anything unparseable, with the
//!   wrong schema, a checksum mismatch, or a version stamp that
//!   contradicts its filename is quarantined by renaming it to
//!   `<name>.corrupt` so the evidence survives while the slot frees up.
//!
//! Snapshot files are named `predictor-v000042.json`; version numbers are
//! monotonically increasing and never reused, even after a quarantine (a
//! corrupt v7 must not be silently replaced by a different v7). A `PINNED`
//! marker file (also written atomically) can force cold-starts onto a
//! specific version — the durable half of a drift rollback.
//!
//! Counter invariants, asserted by `cnnperf stats-check`: every scanned
//! snapshot is either loaded or quarantined
//! (`modelstore.snapshots.scanned == loaded + quarantined`).

use crate::model::PerformancePredictor;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};

/// Snapshot files considered by a directory scan.
static SNAPSHOTS_SCANNED: obs::LazyCounter = obs::LazyCounter::new("modelstore.snapshots.scanned");
/// Snapshots that validated and are servable.
static SNAPSHOTS_LOADED: obs::LazyCounter = obs::LazyCounter::new("modelstore.snapshots.loaded");
/// Snapshots that failed validation and were renamed `.corrupt`.
static SNAPSHOTS_QUARANTINED: obs::LazyCounter =
    obs::LazyCounter::new("modelstore.snapshots.quarantined");
/// Snapshots written (one per successful [`ModelStore::save`]).
static SNAPSHOTS_WRITTEN: obs::LazyCounter = obs::LazyCounter::new("modelstore.snapshots.written");
/// Orphaned temp files swept by a scan (the footprint of a crash
/// mid-write).
static TMP_SWEPT: obs::LazyCounter = obs::LazyCounter::new("modelstore.tmp.swept");
/// Pin-marker writes (`models pin` and drift rollbacks).
static PINS: obs::LazyCounter = obs::LazyCounter::new("modelstore.pins");
/// Versions demoted by `models rollback`.
static DEMOTIONS: obs::LazyCounter = obs::LazyCounter::new("modelstore.demotions");

/// Bump when the envelope or [`PerformancePredictor`] changes shape.
pub const SNAPSHOT_SCHEMA: u32 = 1;

const PIN_FILE: &str = "PINNED";

/// FNV-1a, the same cheap-but-sensitive hash the corpus cache uses.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Descriptive metadata stored alongside the predictor, cheap to list
/// without deserializing the model itself.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotMeta {
    /// Monotonic version number (matches the filename).
    pub version: u64,
    /// Regressor kind name (e.g. `decision-tree`).
    pub kind: String,
    /// Rows in the training set that produced this version.
    pub train_rows: usize,
    /// Free-form provenance note (e.g. `cold-start` / `promotion`).
    pub note: String,
}

#[derive(Debug, Serialize, Deserialize)]
struct SnapshotEnvelope {
    schema_version: u32,
    /// FNV-1a over the canonical (`serde_json::to_string`) predictor JSON.
    checksum: u64,
    meta: SnapshotMeta,
    predictor: PerformancePredictor,
}

/// One valid snapshot known to the store.
#[derive(Debug, Clone)]
pub struct SnapshotInfo {
    pub meta: SnapshotMeta,
    pub path: PathBuf,
    pub checksum: u64,
}

/// Why the store could not do what was asked.
#[derive(Debug)]
pub enum StoreError {
    /// The directory could not be created or scanned.
    Init(String),
    /// An I/O failure on a specific snapshot operation.
    Io(String),
    /// The requested version does not exist (or is quarantined).
    NotFound(u64),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Init(m) => write!(f, "model store init failed: {m}"),
            StoreError::Io(m) => write!(f, "model store i/o failed: {m}"),
            StoreError::NotFound(v) => write!(f, "snapshot version {v} not found"),
        }
    }
}

impl std::error::Error for StoreError {}

/// What a directory scan found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanReport {
    pub scanned: usize,
    pub loaded: usize,
    pub quarantined: usize,
    pub tmp_swept: usize,
}

fn snapshot_filename(version: u64) -> String {
    format!("predictor-v{version:06}.json")
}

/// Strict filename parse: `predictor-vNNNNNN.json` with all-digit NNNNNN.
fn parse_snapshot_version(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("predictor-v")?.strip_suffix(".json")?;
    if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

fn predictor_checksum(predictor: &PerformancePredictor) -> u64 {
    match serde_json::to_string(predictor) {
        Ok(json) => fnv1a(json.as_bytes()),
        Err(_) => 0,
    }
}

fn quarantine_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".corrupt");
    path.with_file_name(name)
}

/// Validate one snapshot file. `expect_version` is the version its
/// filename claims; a mismatched stamp is treated as corruption (a
/// renamed or copied snapshot must not impersonate another version).
fn read_snapshot(path: &Path, expect_version: u64) -> Result<SnapshotEnvelope, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let env: SnapshotEnvelope =
        serde_json::from_str(&text).map_err(|e| format!("unparseable envelope: {e}"))?;
    if env.schema_version != SNAPSHOT_SCHEMA {
        return Err(format!(
            "schema version {} (want {SNAPSHOT_SCHEMA})",
            env.schema_version
        ));
    }
    if env.meta.version != expect_version {
        return Err(format!(
            "version stamp {} contradicts filename version {expect_version}",
            env.meta.version
        ));
    }
    let actual = predictor_checksum(&env.predictor);
    if actual != env.checksum {
        return Err(format!(
            "checksum mismatch: stored {:#018x}, computed {actual:#018x}",
            env.checksum
        ));
    }
    Ok(env)
}

/// The versioned snapshot store rooted at one directory.
#[derive(Debug)]
pub struct ModelStore {
    dir: PathBuf,
    /// Valid snapshots, ascending by version (refreshed by scans and
    /// kept current by saves/demotions).
    entries: Vec<SnapshotInfo>,
    /// Next version to assign; strictly greater than every version ever
    /// seen on disk, quarantined ones included.
    next_version: u64,
}

impl ModelStore {
    /// Open (creating if needed) a store and scan it: orphaned temp files
    /// are swept, invalid snapshots are quarantined, valid ones indexed.
    pub fn open(dir: &Path) -> Result<(ModelStore, ScanReport), StoreError> {
        fs::create_dir_all(dir)
            .map_err(|e| StoreError::Init(format!("create {}: {e}", dir.display())))?;
        let mut store = ModelStore {
            dir: dir.to_path_buf(),
            entries: Vec::new(),
            next_version: 1,
        };
        let report = store.scan()?;
        Ok((store, report))
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Re-scan the directory. Validation happens here (and only here), so
    /// the `scanned == loaded + quarantined` invariant holds per scan.
    pub fn scan(&mut self) -> Result<ScanReport, StoreError> {
        let mut report = ScanReport::default();
        let mut entries: Vec<SnapshotInfo> = Vec::new();
        let mut max_seen: u64 = 0;
        let dir_iter = fs::read_dir(&self.dir)
            .map_err(|e| StoreError::Init(format!("read {}: {e}", self.dir.display())))?;
        for entry in dir_iter.flatten() {
            let path = entry.path();
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(n) => n.to_string(),
                None => continue,
            };
            if name.contains(".tmp.") {
                // a crash mid-write leaves only the temp file; it never
                // became visible, so sweeping it is safe
                let _ = fs::remove_file(&path);
                TMP_SWEPT.inc();
                report.tmp_swept += 1;
                continue;
            }
            if let Some(v) = name
                .strip_suffix(".corrupt")
                .or_else(|| name.strip_suffix(".demoted"))
                .and_then(parse_snapshot_version)
            {
                // quarantined/demoted versions still reserve their number
                max_seen = max_seen.max(v);
                continue;
            }
            let version = match parse_snapshot_version(&name) {
                Some(v) => v,
                None => continue,
            };
            max_seen = max_seen.max(version);
            SNAPSHOTS_SCANNED.inc();
            report.scanned += 1;
            match read_snapshot(&path, version) {
                Ok(env) => {
                    SNAPSHOTS_LOADED.inc();
                    report.loaded += 1;
                    entries.push(SnapshotInfo {
                        meta: env.meta,
                        path,
                        checksum: env.checksum,
                    });
                }
                Err(reason) => {
                    let q = quarantine_path(&path);
                    match fs::rename(&path, &q) {
                        Ok(()) => eprintln!(
                            "warning: snapshot {} is corrupt ({reason}); quarantined as {}",
                            path.display(),
                            q.display()
                        ),
                        Err(e) => eprintln!(
                            "warning: snapshot {} is corrupt ({reason}); quarantine failed: {e}",
                            path.display()
                        ),
                    }
                    SNAPSHOTS_QUARANTINED.inc();
                    report.quarantined += 1;
                }
            }
        }
        entries.sort_by_key(|e| e.meta.version);
        self.entries = entries;
        self.next_version = max_seen + 1;
        Ok(report)
    }

    /// Valid snapshots, ascending by version.
    pub fn list(&self) -> &[SnapshotInfo] {
        &self.entries
    }

    /// Persist a predictor as the next version, crash-safely.
    pub fn save(
        &mut self,
        predictor: &PerformancePredictor,
        train_rows: usize,
        note: &str,
    ) -> Result<SnapshotInfo, StoreError> {
        let version = self.next_version;
        let meta = SnapshotMeta {
            version,
            kind: predictor.kind.name().to_string(),
            train_rows,
            note: note.to_string(),
        };
        let envelope = SnapshotEnvelope {
            schema_version: SNAPSHOT_SCHEMA,
            checksum: predictor_checksum(predictor),
            meta: meta.clone(),
            predictor: predictor.clone(),
        };
        let json = serde_json::to_string(&envelope)
            .map_err(|e| StoreError::Io(format!("serialize v{version}: {e}")))?;
        let path = self.dir.join(snapshot_filename(version));
        let tmp = self.dir.join(format!(
            "{}.tmp.{}",
            snapshot_filename(version),
            std::process::id()
        ));
        fs::write(&tmp, json)
            .map_err(|e| StoreError::Io(format!("write {}: {e}", tmp.display())))?;
        if let Err(e) = fs::rename(&tmp, &path) {
            let _ = fs::remove_file(&tmp);
            return Err(StoreError::Io(format!("publish {}: {e}", path.display())));
        }
        SNAPSHOTS_WRITTEN.inc();
        let info = SnapshotInfo {
            meta,
            path,
            checksum: envelope.checksum,
        };
        self.entries.push(info.clone());
        self.next_version += 1;
        Ok(info)
    }

    /// Load a specific version, re-validating the envelope on read.
    pub fn load_version(
        &self,
        version: u64,
    ) -> Result<(SnapshotInfo, PerformancePredictor), StoreError> {
        let info = self
            .entries
            .iter()
            .find(|e| e.meta.version == version)
            .ok_or(StoreError::NotFound(version))?;
        match read_snapshot(&info.path, version) {
            Ok(env) => Ok((info.clone(), env.predictor)),
            Err(reason) => Err(StoreError::Io(format!("snapshot v{version}: {reason}"))),
        }
    }

    /// Load the newest valid snapshot — or the pinned one, if a pin marker
    /// points at an existing version. A snapshot that went bad since the
    /// scan is skipped in favor of the next-newest.
    pub fn load_latest(&self) -> Option<(SnapshotInfo, PerformancePredictor)> {
        if let Some(v) = self.pinned() {
            if let Ok(hit) = self.load_version(v) {
                return Some(hit);
            }
        }
        for info in self.entries.iter().rev() {
            if let Ok(env) = read_snapshot(&info.path, info.meta.version) {
                return Some((info.clone(), env.predictor));
            }
        }
        None
    }

    /// Pin cold-starts to a specific version (written atomically).
    pub fn pin(&self, version: u64) -> Result<(), StoreError> {
        if !self.entries.iter().any(|e| e.meta.version == version) {
            return Err(StoreError::NotFound(version));
        }
        let path = self.dir.join(PIN_FILE);
        let tmp = self
            .dir
            .join(format!("{PIN_FILE}.tmp.{}", std::process::id()));
        fs::write(&tmp, format!("{version}\n"))
            .map_err(|e| StoreError::Io(format!("write pin: {e}")))?;
        fs::rename(&tmp, &path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            StoreError::Io(format!("publish pin: {e}"))
        })?;
        PINS.inc();
        Ok(())
    }

    /// Remove the pin marker (cold-starts return to newest-valid).
    pub fn unpin(&self) {
        let _ = fs::remove_file(self.dir.join(PIN_FILE));
    }

    /// The pinned version, if a valid marker exists.
    pub fn pinned(&self) -> Option<u64> {
        let text = fs::read_to_string(self.dir.join(PIN_FILE)).ok()?;
        text.trim().parse().ok()
    }

    /// Demote the newest version (rename to `.demoted` so its number stays
    /// reserved but it no longer serves). Returns the demoted version and
    /// the version now newest, if any. A pin pointing at the demoted
    /// version is cleared.
    pub fn demote_latest(&mut self) -> Result<(u64, Option<u64>), StoreError> {
        let info = self
            .entries
            .last()
            .cloned()
            .ok_or(StoreError::Init("store has no snapshots to demote".into()))?;
        let mut name = info.path.file_name().unwrap_or_default().to_os_string();
        name.push(".demoted");
        let demoted = info.path.with_file_name(name);
        fs::rename(&info.path, &demoted)
            .map_err(|e| StoreError::Io(format!("demote v{}: {e}", info.meta.version)))?;
        DEMOTIONS.inc();
        self.entries.pop();
        if self.pinned() == Some(info.meta.version) {
            self.unpin();
        }
        Ok((
            info.meta.version,
            self.entries.last().map(|e| e.meta.version),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::feature_names;
    use mlkit::{Dataset, RegressorKind};

    fn tiny_predictor(seed: u64) -> PerformancePredictor {
        let mut d = Dataset::new(feature_names());
        let nf = d.feature_names.len();
        for i in 0..12 {
            let mut row = vec![0.0; nf];
            row[0] = i as f64;
            row[1] = (i * i) as f64;
            d.push(format!("r{i}"), row, 0.5 + 0.1 * i as f64);
        }
        PerformancePredictor::train(&d, RegressorKind::DecisionTree, seed)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("cnnperf-modelstore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_scan_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let (mut store, report) = ModelStore::open(&dir).unwrap();
        assert_eq!(report, ScanReport::default());
        let p = tiny_predictor(1);
        let info = store.save(&p, 12, "test").unwrap();
        assert_eq!(info.meta.version, 1);

        let (reopened, report) = ModelStore::open(&dir).unwrap();
        assert_eq!(report.loaded, 1);
        assert_eq!(report.quarantined, 0);
        let (loaded_info, loaded) = reopened.load_latest().unwrap();
        assert_eq!(loaded_info.meta.version, 1);
        let row = vec![1.0; feature_names().len()];
        assert_eq!(p.predict_row(&row), loaded.predict_row(&row));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_is_quarantined_and_previous_version_serves() {
        let dir = tmpdir("torn");
        let (mut store, _) = ModelStore::open(&dir).unwrap();
        store.save(&tiny_predictor(1), 12, "good").unwrap();
        // simulate a crash mid-write of v2: a truncated published file
        // plus an orphaned temp file
        let v2 = dir.join(snapshot_filename(2));
        let full = fs::read_to_string(dir.join(snapshot_filename(1))).unwrap();
        fs::write(&v2, &full[..full.len() / 2]).unwrap();
        fs::write(dir.join("predictor-v000003.json.tmp.999"), "partial").unwrap();

        let (reopened, report) = ModelStore::open(&dir).unwrap();
        assert_eq!(report.scanned, 2);
        assert_eq!(report.loaded, 1);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.tmp_swept, 1);
        assert_eq!(report.scanned, report.loaded + report.quarantined);
        assert!(dir.join("predictor-v000002.json.corrupt").exists());
        let (info, _) = reopened.load_latest().unwrap();
        assert_eq!(info.meta.version, 1);
        // the quarantined version number is never reused
        assert_eq!(reopened.next_version, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_stamp_must_match_filename() {
        let dir = tmpdir("stamp");
        let (mut store, _) = ModelStore::open(&dir).unwrap();
        store.save(&tiny_predictor(1), 12, "good").unwrap();
        // copying v1 to v5 must not make it serve as v5
        fs::copy(
            dir.join(snapshot_filename(1)),
            dir.join(snapshot_filename(5)),
        )
        .unwrap();
        let (reopened, report) = ModelStore::open(&dir).unwrap();
        assert_eq!(report.quarantined, 1);
        assert_eq!(reopened.load_latest().unwrap().0.meta.version, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pin_and_demote() {
        let dir = tmpdir("pin");
        let (mut store, _) = ModelStore::open(&dir).unwrap();
        store.save(&tiny_predictor(1), 12, "v1").unwrap();
        store.save(&tiny_predictor(2), 12, "v2").unwrap();
        assert_eq!(store.load_latest().unwrap().0.meta.version, 2);

        store.pin(1).unwrap();
        assert_eq!(store.pinned(), Some(1));
        assert_eq!(store.load_latest().unwrap().0.meta.version, 1);
        assert!(store.pin(9).is_err());
        store.unpin();
        assert_eq!(store.load_latest().unwrap().0.meta.version, 2);

        let (demoted, active) = store.demote_latest().unwrap();
        assert_eq!(demoted, 2);
        assert_eq!(active, Some(1));
        assert_eq!(store.load_latest().unwrap().0.meta.version, 1);
        // the demoted number stays reserved across reopen
        let (reopened, _) = ModelStore::open(&dir).unwrap();
        assert_eq!(reopened.next_version, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn filename_parse_is_strict() {
        assert_eq!(parse_snapshot_version("predictor-v000042.json"), Some(42));
        assert_eq!(parse_snapshot_version("predictor-v.json"), None);
        assert_eq!(parse_snapshot_version("predictor-v12a.json"), None);
        assert_eq!(parse_snapshot_version("other-v000001.json"), None);
    }
}
