//! Online predictor lifecycle: hot-swap, shadow-gated promotion, drift
//! rollback.
//!
//! The paper trains its regressor once on a static 70/30 split; a
//! long-running `serve` daemon instead accumulates ground truth (every
//! detailed/analytical tier success is a measurement) and should improve
//! its predictor as that evidence arrives — without ever serving a worse
//! model, and without a restart. This module supplies the robustness
//! layer that makes that safe:
//!
//! - [`PredictorSlot`] — a lock-free generation-stamped slot. Readers
//!   (`estimate` hot path) do one atomic load; writers serialize behind a
//!   mutex and publish a new generation with an atomic store. Superseded
//!   generations stay reachable on a chain (freed when the slot drops),
//!   so a reader that loaded mid-swap still holds a valid predictor, and
//!   rollback can walk back to the last good one.
//!   [`PredictorSlot::promote_if`] gives exactly-once promotion: of two
//!   concurrent swaps racing from the same observed generation, one wins
//!   and the other gets a typed conflict.
//! - [`MeasurementLog`] — a bounded queue the engine's live tiers push
//!   `(model, device, feature_row, ipc)` into; the trainer drains it.
//! - [`LifecycleManager`] — the control loop: cold-start from the newest
//!   valid snapshot ([`crate::modelstore`]), ingest measurements into a
//!   journal, retrain a candidate, score it in shadow on a held-out
//!   journal slice, promote only if it does not regress the incumbent
//!   beyond the promotion threshold, and watch per-(device, model-family)
//!   rolling error windows for drift — sustained drift rolls the slot
//!   back to the previous generation, pins the last-good snapshot, and
//!   opens a `lifecycle` breaker ([`crate::resilience`]) so one bad
//!   stretch of ground truth cannot flap the model version.
//!
//! Everything is observable: `lifecycle.*` counters cover promotions,
//! rejections, shadow evaluations, drift trips and rollbacks, and
//! `cnnperf stats-check` asserts their invariants (e.g. promotions +
//! rejections never exceed retrains).

use crate::features::feature_names;
use crate::model::PerformancePredictor;
use crate::modelstore::ModelStore;
use crate::resilience::{BreakerConfig, CircuitBreaker};
use mlkit::metrics::mape;
use mlkit::{Dataset, RegressorKind};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Generations published into a slot (cold loads, promotions, rollbacks).
static SLOT_SWAPS: obs::LazyCounter = obs::LazyCounter::new("lifecycle.slot.swaps");
/// Promotions that lost the exactly-once race to a concurrent swap.
static PROMOTE_RACES: obs::LazyCounter = obs::LazyCounter::new("lifecycle.promote.races");
/// Ground-truth measurements accepted into the journal.
static OBSERVATIONS: obs::LazyCounter = obs::LazyCounter::new("lifecycle.observations");
/// Measurements rejected at ingest (non-finite features or target).
static OBSERVATIONS_DROPPED: obs::LazyCounter =
    obs::LazyCounter::new("lifecycle.observations.dropped");
/// Measurements evicted from the bounded log before ingest drained them.
static LOG_EVICTED: obs::LazyCounter = obs::LazyCounter::new("lifecycle.log.evicted");
/// Retrain cycles that trained a candidate.
static RETRAINS: obs::LazyCounter = obs::LazyCounter::new("lifecycle.retrains");
/// Shadow predictions made while validating candidates.
static SHADOW_EVALS: obs::LazyCounter = obs::LazyCounter::new("lifecycle.shadow.evals");
/// Candidates promoted to the active generation.
static PROMOTIONS: obs::LazyCounter = obs::LazyCounter::new("lifecycle.promotions");
/// Candidates rejected by the shadow gate.
static REJECTIONS: obs::LazyCounter = obs::LazyCounter::new("lifecycle.rejections");
/// Drift windows that crossed the drift threshold.
static DRIFT_TRIPS: obs::LazyCounter = obs::LazyCounter::new("lifecycle.drift.trips");
/// Rollbacks performed (at most one per breaker episode).
static ROLLBACKS: obs::LazyCounter = obs::LazyCounter::new("lifecycle.rollbacks");
/// Drift trips suppressed because the lifecycle breaker was open.
static ROLLBACKS_SUPPRESSED: obs::LazyCounter =
    obs::LazyCounter::new("lifecycle.rollbacks.suppressed");
/// Cold starts served from a snapshot vs. trained fresh.
static COLD_SNAPSHOT: obs::LazyCounter = obs::LazyCounter::new("lifecycle.coldstart.snapshot");
static COLD_TRAINED: obs::LazyCounter = obs::LazyCounter::new("lifecycle.coldstart.trained");

// ---------------------------------------------------------------------------
// PredictorSlot
// ---------------------------------------------------------------------------

struct SlotNode {
    generation: u64,
    predictor: Option<Arc<PerformancePredictor>>,
    /// The generation this one superseded; the chain keeps superseded
    /// nodes alive for in-flight readers and for rollback.
    prev: *mut SlotNode,
}

/// A lock-free, generation-stamped predictor slot.
///
/// Readers call [`load`](Self::load) — one `Acquire` pointer load, no
/// lock — and get the generation number alongside the predictor, so
/// every served response is attributable to exactly one generation.
/// Writers serialize behind an internal mutex; publication is a single
/// `Release` store, so a reader observes either the old or the new
/// generation, never a torn state.
pub struct PredictorSlot {
    active: AtomicPtr<SlotNode>,
    /// Serializes writers. Readers never touch it.
    swap: Mutex<()>,
}

// SAFETY: nodes are immutable after publication; the raw pointers are
// only written under the swap mutex and only freed in Drop (which has
// exclusive access by &mut).
unsafe impl Send for PredictorSlot {}
unsafe impl Sync for PredictorSlot {}

/// A concurrent swap won the race; the caller's observed generation is
/// stale. Carries the generation that is now active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapRace {
    pub active_generation: u64,
}

impl PredictorSlot {
    /// An empty slot at generation 0 (the regressor tier fails fast until
    /// a predictor is installed).
    pub fn new() -> Self {
        let root = Box::into_raw(Box::new(SlotNode {
            generation: 0,
            predictor: None,
            prev: std::ptr::null_mut(),
        }));
        PredictorSlot {
            active: AtomicPtr::new(root),
            swap: Mutex::new(()),
        }
    }

    fn node(&self) -> &SlotNode {
        // SAFETY: `active` always points at a published node; nodes live
        // until the slot itself drops.
        unsafe { &*self.active.load(Ordering::Acquire) }
    }

    /// The active `(generation, predictor)` — one atomic load.
    pub fn load(&self) -> (u64, Option<Arc<PerformancePredictor>>) {
        let n = self.node();
        (n.generation, n.predictor.clone())
    }

    /// The active generation number.
    pub fn generation(&self) -> u64 {
        self.node().generation
    }

    fn publish(&self, predictor: Option<Arc<PerformancePredictor>>) -> u64 {
        // caller holds the swap mutex
        let cur = self.active.load(Ordering::Relaxed);
        let generation = unsafe { &*cur }.generation + 1;
        let next = Box::into_raw(Box::new(SlotNode {
            generation,
            predictor,
            prev: cur,
        }));
        self.active.store(next, Ordering::Release);
        SLOT_SWAPS.inc();
        generation
    }

    /// Unconditionally publish a new generation (cold loads, rollbacks,
    /// operator pins). Returns the new generation.
    pub fn install(&self, predictor: Arc<PerformancePredictor>) -> u64 {
        let _g = self.swap.lock().unwrap_or_else(|p| p.into_inner());
        self.publish(Some(predictor))
    }

    /// Exactly-once promotion: publish `predictor` only if the active
    /// generation is still `expected` (the generation the candidate was
    /// validated against). Of two concurrent promotions from the same
    /// observation, exactly one succeeds.
    pub fn promote_if(
        &self,
        expected: u64,
        predictor: Arc<PerformancePredictor>,
    ) -> Result<u64, SwapRace> {
        let _g = self.swap.lock().unwrap_or_else(|p| p.into_inner());
        let active = unsafe { &*self.active.load(Ordering::Relaxed) }.generation;
        if active != expected {
            PROMOTE_RACES.inc();
            return Err(SwapRace {
                active_generation: active,
            });
        }
        Ok(self.publish(Some(predictor)))
    }

    /// Roll back to the most recent superseded generation that held a
    /// *different* predictor, republished as a fresh generation (history
    /// moves forward even when the model moves back). Returns
    /// `(new_generation, resurrected_generation)`, or `None` when no
    /// earlier distinct predictor exists.
    pub fn rollback(&self) -> Option<(u64, u64)> {
        let _g = self.swap.lock().unwrap_or_else(|p| p.into_inner());
        let cur = unsafe { &*self.active.load(Ordering::Relaxed) };
        let cur_ptr = cur.predictor.as_ref().map(Arc::as_ptr);
        let mut walk = cur.prev;
        while !walk.is_null() {
            let n = unsafe { &*walk };
            if let Some(p) = &n.predictor {
                if Some(Arc::as_ptr(p)) != cur_ptr {
                    let resurrected = n.generation;
                    let p = p.clone();
                    let new_gen = self.publish(Some(p));
                    return Some((new_gen, resurrected));
                }
            }
            walk = n.prev;
        }
        None
    }
}

impl Default for PredictorSlot {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for PredictorSlot {
    fn drop(&mut self) {
        // exclusive access: free the whole chain
        let mut walk = *self.active.get_mut();
        while !walk.is_null() {
            let boxed = unsafe { Box::from_raw(walk) };
            walk = boxed.prev;
        }
    }
}

// ---------------------------------------------------------------------------
// MeasurementLog
// ---------------------------------------------------------------------------

/// One ground-truth observation: the live tiers computed `ipc` for this
/// `(model, device)`, and `row` is the paper's feature vector for the
/// pair — everything the trainer needs without re-profiling.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub model: String,
    pub device: String,
    pub row: Vec<f64>,
    pub ipc: f64,
}

/// A bounded multi-producer measurement queue between the engine's live
/// tiers and the lifecycle trainer. Overflow evicts the oldest entry
/// (ground truth is a stream, not a ledger).
pub struct MeasurementLog {
    cap: usize,
    inner: Mutex<VecDeque<Measurement>>,
}

impl MeasurementLog {
    pub fn new(cap: usize) -> Self {
        MeasurementLog {
            cap: cap.max(1),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    pub fn push(&self, m: Measurement) {
        let mut q = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if q.len() >= self.cap {
            q.pop_front();
            LOG_EVICTED.inc();
        }
        q.push_back(m);
    }

    /// Take everything currently queued.
    pub fn drain(&self) -> Vec<Measurement> {
        let mut q = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        q.drain(..).collect()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// LifecycleManager
// ---------------------------------------------------------------------------

/// The model family of a CNN name: its leading alphabetic run, lowercased
/// (`resnet50` and `resnet18` share a drift window; `vgg16` gets its own).
pub fn family_of(model: &str) -> String {
    model
        .chars()
        .take_while(|c| c.is_ascii_alphabetic())
        .flat_map(|c| c.to_lowercase())
        .collect::<String>()
}

/// Lifecycle tuning.
#[derive(Debug, Clone)]
pub struct LifecycleConfig {
    /// Regressor family retrained candidates use.
    pub regressor: RegressorKind,
    /// Training seed (kept fixed so retrain results are replayable).
    pub seed: u64,
    /// Wall time between retrain cycles in the serve daemon.
    pub retrain_interval: Duration,
    /// Journal rows required before the first retrain fires.
    pub min_retrain_rows: usize,
    /// Held-out journal rows a candidate is shadow-scored on.
    pub shadow_window: usize,
    /// Allowed relative MAPE regression vs. the incumbent: promote while
    /// `cand <= incumbent * (1 + threshold)`.
    pub promotion_threshold: f64,
    /// Rolling relative-error window length per (device, family).
    pub drift_window: usize,
    /// Mean relative error at which a full window counts as drift.
    pub drift_threshold: f64,
    /// Breaker pacing rollbacks: one per episode, then a cooldown.
    pub drift_breaker: BreakerConfig,
    /// Capacity of the engine→trainer measurement log.
    pub log_capacity: usize,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            regressor: RegressorKind::DecisionTree,
            seed: 42,
            retrain_interval: Duration::from_secs(60),
            min_retrain_rows: 8,
            shadow_window: 16,
            promotion_threshold: 0.05,
            drift_window: 8,
            drift_threshold: 0.5,
            // trips on the first recorded failure, then holds the episode
            // open for a cooldown so drift rolls back exactly once
            drift_breaker: BreakerConfig {
                window: 1,
                failure_threshold: 1.0,
                min_samples: 1,
                cooldown_ticks: 64,
                probe_quota: 1,
            },
            log_capacity: 4096,
        }
    }
}

/// How a cold start resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColdStart {
    /// Loaded the newest valid (or pinned) snapshot.
    Snapshot { version: u64, generation: u64 },
    /// No usable snapshot; trained from the base dataset and (when a
    /// store is attached) persisted the result as the first version.
    Trained {
        generation: u64,
        version: Option<u64>,
    },
    /// No snapshot and no base dataset — the slot stays empty.
    Empty,
}

/// What one retrain cycle did.
#[derive(Debug, Clone, PartialEq)]
pub enum RetrainOutcome {
    /// Not enough (new) journal rows yet.
    SkippedNoData,
    /// The shadow gate rejected the candidate.
    Rejected { cand_mape: f64, incumbent_mape: f64 },
    /// The candidate was promoted (and snapshotted, when a store is
    /// attached).
    Promoted {
        generation: u64,
        version: Option<u64>,
        cand_mape: f64,
        incumbent_mape: f64,
    },
    /// A concurrent swap changed the generation between validation and
    /// promotion; the candidate was discarded (retried next cycle).
    RaceLost,
}

/// One ingest pass over the measurement log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Measurements accepted into the journal.
    pub observed: usize,
    /// Measurements dropped for non-finite features/targets.
    pub dropped: usize,
    /// Drift windows that crossed the threshold during this pass.
    pub drift_trips: usize,
    /// Rollbacks performed (0 or 1; the breaker suppresses repeats).
    pub rollbacks: usize,
    /// Drift trips ignored because the lifecycle breaker was open.
    pub suppressed: usize,
}

struct LifecycleState {
    /// Sanitized ground truth accumulated across ingest passes.
    journal: Dataset,
    /// Journal length at the last retrain (a retrain needs new evidence).
    last_trained_len: usize,
    /// Rolling relative errors per (device, model family).
    drift: HashMap<(String, String), VecDeque<f64>>,
    /// Paces rollbacks: logical ticks advance per accepted measurement.
    breaker: CircuitBreaker,
    tick: u64,
    /// Snapshot version per published generation (for pinning last-good).
    versions: HashMap<u64, u64>,
}

/// The lifecycle control loop: owns the journal, the drift windows, and
/// the (optional) snapshot store; shares the slot and measurement log
/// with the engine shards.
pub struct LifecycleManager {
    cfg: LifecycleConfig,
    slot: Arc<PredictorSlot>,
    log: Arc<MeasurementLog>,
    store: Option<Mutex<ModelStore>>,
    /// Base training set (the paper's corpus-derived dataset), used for
    /// cold-start training and as the backbone of every retrain.
    base: Option<Dataset>,
    state: Mutex<LifecycleState>,
}

impl LifecycleManager {
    pub fn new(
        cfg: LifecycleConfig,
        slot: Arc<PredictorSlot>,
        store: Option<ModelStore>,
        base: Option<Dataset>,
    ) -> Self {
        let log = Arc::new(MeasurementLog::new(cfg.log_capacity));
        let breaker = CircuitBreaker::new(cfg.drift_breaker.clone());
        LifecycleManager {
            cfg,
            slot,
            log,
            store: store.map(Mutex::new),
            base,
            state: Mutex::new(LifecycleState {
                journal: Dataset::new(feature_names()),
                last_trained_len: 0,
                drift: HashMap::new(),
                breaker,
                tick: 0,
                versions: HashMap::new(),
            }),
        }
    }

    pub fn slot(&self) -> &Arc<PredictorSlot> {
        &self.slot
    }

    pub fn log(&self) -> &Arc<MeasurementLog> {
        &self.log
    }

    pub fn config(&self) -> &LifecycleConfig {
        &self.cfg
    }

    fn with_store<T>(&self, f: impl FnOnce(&mut ModelStore) -> T) -> Option<T> {
        self.store
            .as_ref()
            .map(|m| f(&mut m.lock().unwrap_or_else(|p| p.into_inner())))
    }

    fn remember_version(&self, generation: u64, version: u64) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.versions.insert(generation, version);
    }

    /// Bring the slot up: newest valid snapshot first, fresh training
    /// from the base dataset second, empty slot last.
    pub fn cold_start(&self) -> ColdStart {
        if let Some(Some((info, predictor))) = self.with_store(|s| s.load_latest()) {
            let generation = self.slot.install(Arc::new(predictor));
            self.remember_version(generation, info.meta.version);
            COLD_SNAPSHOT.inc();
            return ColdStart::Snapshot {
                version: info.meta.version,
                generation,
            };
        }
        if let Some(base) = &self.base {
            let predictor = PerformancePredictor::train(base, self.cfg.regressor, self.cfg.seed);
            let rows = base.len();
            let generation = self.slot.install(Arc::new(predictor.clone()));
            let version = self
                .with_store(|s| s.save(&predictor, rows, "cold-start").ok())
                .flatten()
                .map(|info| info.meta.version);
            if let Some(v) = version {
                self.remember_version(generation, v);
            }
            COLD_TRAINED.inc();
            return ColdStart::Trained {
                generation,
                version,
            };
        }
        ColdStart::Empty
    }

    /// Drain the measurement log into the journal, scoring each accepted
    /// measurement against the active predictor for drift. A full drift
    /// window above the threshold demotes the active generation back to
    /// the previous one (once per breaker episode) and pins the last-good
    /// snapshot so the demotion survives a restart.
    pub fn ingest(&self) -> IngestReport {
        let mut report = IngestReport::default();
        let measurements = self.log.drain();
        if measurements.is_empty() {
            return report;
        }
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let nf = st.journal.feature_names.len();
        for m in measurements {
            st.tick += 1;
            let finite = m.ipc.is_finite()
                && m.ipc > 0.0
                && m.row.len() == nf
                && m.row.iter().all(|v| v.is_finite());
            if !finite {
                OBSERVATIONS_DROPPED.inc();
                report.dropped += 1;
                continue;
            }
            OBSERVATIONS.inc();
            report.observed += 1;
            let label = format!("{}@{}", m.model, m.device);
            st.journal.push(label, m.row.clone(), m.ipc);

            // drift scoring against whatever is being served right now
            let (_, active) = self.slot.load();
            let Some(active) = active else { continue };
            let rel = (active.predict_row(&m.row) - m.ipc).abs() / m.ipc;
            if !rel.is_finite() {
                continue;
            }
            let key = (m.device.clone(), family_of(&m.model));
            let window = st.drift.entry(key.clone()).or_default();
            window.push_back(rel);
            while window.len() > self.cfg.drift_window {
                window.pop_front();
            }
            if window.len() >= self.cfg.drift_window {
                let mean = window.iter().sum::<f64>() / window.len() as f64;
                if mean >= self.cfg.drift_threshold {
                    DRIFT_TRIPS.inc();
                    report.drift_trips += 1;
                    if let Some(w) = st.drift.get_mut(&key) {
                        w.clear();
                    }
                    let tick = st.tick;
                    if st.breaker.admit(tick) {
                        // open the breaker for this episode before the
                        // rollback so repeats are suppressed
                        st.breaker.record(tick, false);
                        if let Some((new_gen, resurrected)) = self.slot.rollback() {
                            ROLLBACKS.inc();
                            report.rollbacks += 1;
                            // every drift window was scored against the
                            // demoted model; start fresh for the restored
                            st.drift.clear();
                            if let Some(&version) = st.versions.get(&resurrected) {
                                st.versions.insert(new_gen, version);
                                self.with_store(|s| {
                                    if s.pin(version).is_ok() {
                                        eprintln!(
                                            "lifecycle: drift rollback pinned snapshot v{version}"
                                        );
                                    }
                                });
                            }
                        }
                    } else {
                        ROLLBACKS_SUPPRESSED.inc();
                        report.suppressed += 1;
                    }
                }
            }
        }
        report
    }

    /// One retrain cycle: train a candidate on base + journal (minus the
    /// held-out shadow slice), shadow-score it, and promote through the
    /// gate. See [`RetrainOutcome`].
    pub fn retrain_cycle(&self) -> RetrainOutcome {
        let (snapshot_journal, shadow) = {
            let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
            let n = st.journal.len();
            if n < self.cfg.min_retrain_rows || n == st.last_trained_len {
                return RetrainOutcome::SkippedNoData;
            }
            // hold out the newest rows for shadow scoring: the candidate
            // must prove itself on evidence it did not train on
            let shadow_n = self.cfg.shadow_window.min(n.div_ceil(2));
            let train_idx: Vec<usize> = (0..n - shadow_n).collect();
            let shadow_idx: Vec<usize> = (n - shadow_n..n).collect();
            (
                st.journal.select(&train_idx),
                st.journal.select(&shadow_idx),
            )
        };
        let candidate = self.train_candidate(&snapshot_journal);
        let outcome = self.shadow_and_maybe_promote(Arc::new(candidate), &shadow);
        if !matches!(outcome, RetrainOutcome::RaceLost) {
            let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
            st.last_trained_len = snapshot_journal.len() + shadow.len();
        }
        outcome
    }

    /// Train a candidate on the base dataset plus the given journal rows,
    /// defensively dropping any non-finite row first (the NaN-ranks-worst
    /// guarantee extended to the training path).
    fn train_candidate(&self, journal: &Dataset) -> PerformancePredictor {
        let mut train = match &self.base {
            Some(base) => base.clone(),
            None => Dataset::new(feature_names()),
        };
        train.append(journal);
        train.retain_finite();
        RETRAINS.inc();
        PerformancePredictor::train(&train, self.cfg.regressor, self.cfg.seed)
    }

    /// Shadow-score `candidate` on the held-out rows and promote it only
    /// if its MAPE does not regress the incumbent beyond the promotion
    /// threshold. Public so chaos drills can inject a deliberately-worse
    /// candidate and assert it never reaches the slot.
    pub fn shadow_and_maybe_promote(
        &self,
        candidate: Arc<PerformancePredictor>,
        shadow: &Dataset,
    ) -> RetrainOutcome {
        let (observed_gen, incumbent) = self.slot.load();
        let mut cand_pred = Vec::with_capacity(shadow.len());
        let mut inc_pred = Vec::with_capacity(shadow.len());
        for row in &shadow.x {
            SHADOW_EVALS.inc();
            cand_pred.push(candidate.predict_row(row));
            if let Some(inc) = &incumbent {
                inc_pred.push(inc.predict_row(row));
            }
        }
        let cand_mape = if shadow.is_empty() {
            f64::NAN
        } else {
            mape(&shadow.y, &cand_pred)
        };
        let incumbent_mape = if incumbent.is_some() && !shadow.is_empty() {
            mape(&shadow.y, &inc_pred)
        } else {
            f64::INFINITY
        };
        // a candidate must prove itself on a real shadow slice: no
        // evidence, or NaN-scoring, is an automatic rejection (unless the
        // slot is empty — any finite-scoring model beats none, but a
        // NaN-scorer still never ships)
        let promote = if !cand_mape.is_finite() {
            false
        } else if incumbent.is_none() {
            true
        } else {
            cand_mape <= incumbent_mape * (1.0 + self.cfg.promotion_threshold)
        };
        if !promote {
            REJECTIONS.inc();
            return RetrainOutcome::Rejected {
                cand_mape,
                incumbent_mape,
            };
        }
        match self.slot.promote_if(observed_gen, candidate.clone()) {
            Ok(generation) => {
                PROMOTIONS.inc();
                let rows = {
                    let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
                    st.journal.len() + self.base.as_ref().map_or(0, |b| b.len())
                };
                let version = self
                    .with_store(|s| s.save(&candidate, rows, "promotion").ok())
                    .flatten()
                    .map(|info| info.meta.version);
                if let Some(v) = version {
                    self.remember_version(generation, v);
                    // the freshly promoted version supersedes any pin a
                    // past rollback left behind
                    self.with_store(|s| s.unpin());
                }
                RetrainOutcome::Promoted {
                    generation,
                    version,
                    cand_mape,
                    incumbent_mape,
                }
            }
            Err(_) => RetrainOutcome::RaceLost,
        }
    }

    /// The serve daemon's trainer loop: ingest frequently, retrain on the
    /// configured interval, exit when `stop` says so.
    pub fn run_until(&self, stop: impl Fn() -> bool) {
        let mut last_retrain = std::time::Instant::now();
        while !stop() {
            self.ingest();
            if last_retrain.elapsed() >= self.cfg.retrain_interval {
                last_retrain = std::time::Instant::now();
                self.retrain_cycle();
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        // final pass so measurements produced during drain are journaled
        self.ingest();
    }

    /// Journal length (test and stats visibility).
    pub fn journal_len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .journal
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64};

    fn toy_predictor(scale: f64) -> PerformancePredictor {
        let mut d = Dataset::new(feature_names());
        let nf = d.feature_names.len();
        for i in 0..10 {
            let mut row = vec![0.0; nf];
            row[0] = i as f64;
            d.push(format!("r{i}"), row, scale * (1.0 + i as f64));
        }
        PerformancePredictor::train(&d, RegressorKind::DecisionTree, 7)
    }

    #[test]
    fn slot_starts_empty_and_installs_generations() {
        let slot = PredictorSlot::new();
        assert_eq!(slot.load().0, 0);
        assert!(slot.load().1.is_none());
        let g1 = slot.install(Arc::new(toy_predictor(1.0)));
        assert_eq!(g1, 1);
        let (g, p) = slot.load();
        assert_eq!(g, 1);
        assert!(p.is_some());
    }

    #[test]
    fn promote_if_is_exactly_once() {
        let slot = Arc::new(PredictorSlot::new());
        let base = slot.install(Arc::new(toy_predictor(1.0)));
        let winners = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let slot = Arc::clone(&slot);
                let winners = &winners;
                s.spawn(move || {
                    if slot.promote_if(base, Arc::new(toy_predictor(2.0))).is_ok() {
                        winners.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(
            winners.load(Ordering::SeqCst),
            1,
            "exactly one concurrent promotion may win"
        );
        assert_eq!(slot.generation(), base + 1);
    }

    #[test]
    fn rollback_restores_previous_distinct_predictor() {
        let slot = PredictorSlot::new();
        let good = Arc::new(toy_predictor(1.0));
        let bad = Arc::new(toy_predictor(5.0));
        slot.install(good.clone());
        slot.install(bad);
        let (new_gen, resurrected) = slot.rollback().expect("has history");
        assert_eq!(resurrected, 1);
        assert_eq!(new_gen, 3);
        let (_, active) = slot.load();
        assert!(Arc::ptr_eq(&active.unwrap(), &good));
        // nothing older and distinct left beyond the root
        assert!(slot.rollback().is_some(), "bad gen 2 is still distinct");
    }

    #[test]
    fn rollback_on_empty_slot_is_none() {
        let slot = PredictorSlot::new();
        assert!(slot.rollback().is_none());
        slot.install(Arc::new(toy_predictor(1.0)));
        assert!(slot.rollback().is_none(), "no distinct predecessor");
    }

    #[test]
    fn readers_survive_concurrent_swaps() {
        let slot = Arc::new(PredictorSlot::new());
        slot.install(Arc::new(toy_predictor(1.0)));
        let stop = Arc::new(AtomicBool::new(false));
        let row = vec![1.0; feature_names().len()];
        std::thread::scope(|s| {
            for _ in 0..4 {
                let slot = Arc::clone(&slot);
                let stop = Arc::clone(&stop);
                let row = row.clone();
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let (gen, p) = slot.load();
                        assert!(gen >= 1);
                        let y = p.expect("installed").predict_row(&row);
                        assert!(y.is_finite());
                    }
                });
            }
            for i in 0..200 {
                slot.install(Arc::new(toy_predictor(1.0 + i as f64 / 100.0)));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(slot.generation(), 201);
    }

    #[test]
    fn measurement_log_bounds_and_drains() {
        let log = MeasurementLog::new(3);
        for i in 0..5 {
            log.push(Measurement {
                model: format!("m{i}"),
                device: "d".into(),
                row: vec![],
                ipc: 1.0,
            });
        }
        let drained = log.drain();
        assert_eq!(drained.len(), 3, "bounded: oldest evicted");
        assert_eq!(drained[0].model, "m2");
        assert!(log.is_empty());
    }

    #[test]
    fn family_groups_variants() {
        assert_eq!(family_of("resnet50"), "resnet");
        assert_eq!(family_of("resnet18"), "resnet");
        assert_eq!(family_of("MobileNetV2"), "mobilenetv");
        assert_eq!(family_of("vgg16"), "vgg");
    }
}
