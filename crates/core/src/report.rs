//! Plain-text table rendering for the benchmark harness (the regenerated
//! Tables I-IV and Fig. 4 series print through this).

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    Left,
    Right,
}

/// A simple monospace table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
        let aligns = vec![Align::Right; headers.len()];
        Self {
            title: title.into(),
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Set the alignment of one column (default: right).
    pub fn align(mut self, col: usize, a: Align) -> Self {
        self.aligns[col] = a;
        self
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let total: usize = widths.iter().sum::<usize>() + 3 * ncol + 1;
        writeln!(f, "{}", self.title)?;
        writeln!(f, "{}", "=".repeat(total.min(100)))?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for ((c, w), a) in cells.iter().zip(&widths).zip(&self.aligns) {
                match a {
                    Align::Left => write!(f, " {c:<w$} |")?,
                    Align::Right => write!(f, " {c:>w$} |")?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        writeln!(f, "{}", "-".repeat(total.min(100)))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Format a large count with thousands separators (Table I style).
pub fn thousands(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// Format a float with fixed decimals.
pub fn fixed(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_separators() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1000), "1,000");
        assert_eq!(thousands(25_549_352), "25,549,352");
        assert_eq!(thousands(1_046_113_195), "1,046,113,195");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("T", &["name", "value"]).align(0, Align::Left);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["bb".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.contains("| a    |"), "{s}");
        assert!(s.contains("|    22 |") || s.contains("| 22 |"), "{s}");
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn row_arity_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
