//! Crash-safe on-disk corpus cache.
//!
//! The corpus takes ~1 min to build, so both the CLI and the bench
//! harness cache it as JSON. A process killed mid-write (or a disk that
//! lies) must never leave a half-written file that poisons every later
//! run, so the cache is defended on both ends:
//!
//! - **Writes** go to a temp file in the same directory and are published
//!   with an atomic `rename`, so readers only ever see nothing or a
//!   complete file.
//! - **Reads** validate an envelope carrying a schema version and an
//!   FNV-1a checksum of the serialized corpus. Anything that fails to
//!   parse, carries the wrong schema, or fails the checksum is quarantined
//!   by renaming it to `<name>.corrupt` (with a warning on stderr) so the
//!   evidence survives for debugging while the cache slot frees up for a
//!   clean rebuild.

use crate::pipeline::Corpus;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// Corpus-cache traffic: `hits + misses == loads`; quarantines are the
/// subset of misses where an invalid file was moved aside.
static CACHE_HITS: obs::LazyCounter = obs::LazyCounter::new("corpus_cache.hits");
static CACHE_MISSES: obs::LazyCounter = obs::LazyCounter::new("corpus_cache.misses");
static CACHE_QUARANTINED: obs::LazyCounter = obs::LazyCounter::new("corpus_cache.quarantined");
static CACHE_STORES: obs::LazyCounter = obs::LazyCounter::new("corpus_cache.stores");

/// Bump when [`Corpus`] (or the envelope itself) changes shape; readers
/// treat any other version as corrupt-for-our-purposes and quarantine it.
pub const CORPUS_CACHE_SCHEMA: u32 = 1;

#[derive(Debug, Serialize, Deserialize)]
struct CacheEnvelope {
    schema_version: u32,
    /// FNV-1a over the canonical (`serde_json::to_string`) corpus JSON.
    checksum: u64,
    corpus: Corpus,
}

/// FNV-1a, the same cheap-but-sensitive hash the fault injectors use.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn corpus_checksum(corpus: &Corpus) -> u64 {
    match serde_json::to_string(corpus) {
        Ok(json) => fnv1a(json.as_bytes()),
        Err(_) => 0,
    }
}

/// Why a cache load produced nothing usable.
#[derive(Debug, PartialEq, Eq)]
pub enum CacheMiss {
    /// No file at the path — a clean miss.
    Absent,
    /// The file existed but was invalid; it has been quarantined (renamed
    /// with a `.corrupt` suffix). The string says what was wrong.
    Quarantined(String),
}

/// Load a corpus from `path`, validating the crash-safety envelope.
/// Invalid files are moved aside to `<path>.corrupt` so the next
/// [`store_corpus`] starts clean.
pub fn load_corpus(path: &Path) -> Result<Corpus, CacheMiss> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => {
            CACHE_MISSES.inc();
            return Err(CacheMiss::Absent);
        }
    };
    let reason = match serde_json::from_str::<CacheEnvelope>(&text) {
        Err(e) => format!("unparseable envelope: {e:?}"),
        Ok(env) if env.schema_version != CORPUS_CACHE_SCHEMA => format!(
            "schema version {} (want {})",
            env.schema_version, CORPUS_CACHE_SCHEMA
        ),
        Ok(env) => {
            let actual = corpus_checksum(&env.corpus);
            if actual != env.checksum {
                format!(
                    "checksum mismatch: stored {:#018x}, computed {actual:#018x}",
                    env.checksum
                )
            } else {
                CACHE_HITS.inc();
                return Ok(env.corpus);
            }
        }
    };
    let quarantine = quarantine_path(path);
    match fs::rename(path, &quarantine) {
        Ok(()) => eprintln!(
            "warning: corpus cache {} is corrupt ({reason}); quarantined as {}",
            path.display(),
            quarantine.display()
        ),
        Err(e) => eprintln!(
            "warning: corpus cache {} is corrupt ({reason}); quarantine failed: {e}",
            path.display()
        ),
    }
    CACHE_MISSES.inc();
    CACHE_QUARANTINED.inc();
    Err(CacheMiss::Quarantined(reason))
}

fn quarantine_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".corrupt");
    path.with_file_name(name)
}

/// Store a corpus at `path` crash-safely: envelope with schema + checksum,
/// written to a sibling temp file, published atomically via rename.
pub fn store_corpus(path: &Path, corpus: &Corpus) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let envelope = CacheEnvelope {
        schema_version: CORPUS_CACHE_SCHEMA,
        checksum: corpus_checksum(corpus),
        // cloning the corpus once per store is noise next to the build
        corpus: corpus.clone(),
    };
    let json = serde_json::to_string(&envelope)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    fs::write(&tmp, json)?;
    match fs::rename(&tmp, path) {
        Ok(()) => {
            CACHE_STORES.inc();
            Ok(())
        }
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::build_corpus;

    fn tiny_corpus() -> Corpus {
        let models: Vec<cnn_ir::ModelGraph> = vec![cnn_ir::zoo::build("mobilenet").unwrap()];
        let devices = vec![gpu_sim::specs::quadro_p1000()];
        build_corpus(&models, &devices).unwrap()
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cnnperf-cache-test-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_preserves_corpus() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("corpus.json");
        let corpus = tiny_corpus();
        store_corpus(&path, &corpus).unwrap();
        let loaded = load_corpus(&path).unwrap();
        assert_eq!(
            serde_json::to_string(&loaded).unwrap(),
            serde_json::to_string(&corpus).unwrap()
        );
    }

    #[test]
    fn absent_file_is_clean_miss() {
        let dir = tmp_dir("absent");
        assert_eq!(
            load_corpus(&dir.join("nope.json")).unwrap_err(),
            CacheMiss::Absent
        );
    }

    #[test]
    fn garbage_is_quarantined() {
        let dir = tmp_dir("garbage");
        let path = dir.join("corpus.json");
        fs::write(&path, "{not json at all").unwrap();
        match load_corpus(&path) {
            Err(CacheMiss::Quarantined(_)) => {}
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert!(!path.exists(), "corrupt file must be moved aside");
        assert!(
            dir.join("corpus.json.corrupt").exists(),
            "quarantined copy must survive for debugging"
        );
    }

    #[test]
    fn truncated_write_is_quarantined() {
        let dir = tmp_dir("truncated");
        let path = dir.join("corpus.json");
        let corpus = tiny_corpus();
        store_corpus(&path, &corpus).unwrap();
        // simulate a crash mid-write of a *non-atomic* writer: chop the
        // file in half
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(load_corpus(&path), Err(CacheMiss::Quarantined(_))));
        assert!(dir.join("corpus.json.corrupt").exists());
    }

    #[test]
    fn flipped_payload_fails_checksum() {
        let dir = tmp_dir("bitflip");
        let path = dir.join("corpus.json");
        let corpus = tiny_corpus();
        store_corpus(&path, &corpus).unwrap();
        // corrupt a digit inside the payload without breaking JSON syntax
        let text = fs::read_to_string(&path).unwrap();
        let target = format!("\"ipc\":{}", corpus.samples[0].ipc);
        assert!(text.contains(&target), "test needs a recognizable field");
        let flipped = text.replace(&target, "\"ipc\":0.123456789");
        fs::write(&path, flipped).unwrap();
        match load_corpus(&path) {
            Err(CacheMiss::Quarantined(reason)) => {
                assert!(reason.contains("checksum"), "reason: {reason}")
            }
            other => panic!("expected checksum quarantine, got {other:?}"),
        }
    }

    #[test]
    fn store_leaves_no_temp_files() {
        let dir = tmp_dir("tmpfiles");
        let path = dir.join("corpus.json");
        store_corpus(&path, &tiny_corpus()).unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
    }
}
