//! Process-wide memoization of the static + dynamic model analysis.
//!
//! The paper's speed argument (Table IV) rests on the dynamic code
//! analysis being paid **once per model**: the executed-instruction count
//! is GPU-independent, so a DSE sweep over `n` devices costs
//! `t_dca + n * t_pm`, not `n * t_dca`. Before this cache the repo
//! undercut that — every estimation request, every corpus cell and every
//! DSE candidate re-lowered and re-executed the DCA from scratch.
//!
//! [`analyze_cached`] keys on `(model content hash, sm target)` — the same
//! FNV-1a envelope hashing as the on-disk corpus cache ([`crate::cache`])
//! — and stores the complete [`profile_model`](crate::features::profile_model)
//! output behind an `Arc`, so the ResilientEngine's detailed/analytical
//! tiers, `build_corpus_robust` and DSE sweeps all share one analysis per
//! model. The cache is bounded (LRU over a logical access stamp) and only
//! successful analyses are stored; failures propagate uncached.
//!
//! Traffic is observable via the `analysis.cache.{lookups,hits,misses,
//! evictions}` counters, which satisfy `hits + misses == lookups` (checked
//! by the CLI `stats-check` validator). The analysis itself runs *outside*
//! the cache lock: a slow DCA never blocks concurrent lookups of other
//! models.

use crate::features::{profile_model_report, CnnProfile, ProfileError};
use cnn_ir::{ModelGraph, ModelSummary};
use ptx::kernel::LaunchPlan;
use ptx_analysis::{CountingReport, ExecBudget, PlanCount};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Cache probes.
static CACHE_LOOKUPS: obs::LazyCounter = obs::LazyCounter::new("analysis.cache.lookups");
/// Probes answered from the cache.
static CACHE_HITS: obs::LazyCounter = obs::LazyCounter::new("analysis.cache.hits");
/// Probes that ran the full analysis.
static CACHE_MISSES: obs::LazyCounter = obs::LazyCounter::new("analysis.cache.misses");
/// Entries displaced by the LRU bound.
static CACHE_EVICTIONS: obs::LazyCounter = obs::LazyCounter::new("analysis.cache.evictions");

/// Maximum cached analyses. Each entry holds a lowered plan plus counts
/// (tens of kilobytes); 64 comfortably covers the 32-model zoo at two
/// lowering targets.
pub const ANALYSIS_CACHE_CAPACITY: usize = 64;

/// The complete output of one model analysis: everything
/// [`crate::features::profile_model`] returns, cached as a unit.
#[derive(Debug, Clone)]
pub struct AnalyzedModel {
    pub profile: CnnProfile,
    pub plan: LaunchPlan,
    pub counts: PlanCount,
    pub summary: ModelSummary,
    /// Which counting tier produced `counts` (poly vs interpreter) and how
    /// often the poly tier deferred — provenance for diagnostics; the
    /// counts themselves are mode-invariant.
    pub counting: CountingReport,
}

struct Entry {
    value: Arc<AnalyzedModel>,
    /// Logical last-access stamp for LRU eviction.
    stamp: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<(u64, String), Entry>,
    tick: u64,
}

fn cache() -> &'static Mutex<Inner> {
    static CACHE: OnceLock<Mutex<Inner>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(Inner::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Inner> {
    // a panicked analysis thread cannot corrupt the map (inserts are
    // atomic), so a poisoned lock is safe to keep using
    cache().lock().unwrap_or_else(|e| e.into_inner())
}

/// FNV-1a, mirroring the on-disk corpus cache's envelope hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Content hash of a model graph: FNV-1a over its canonical JSON
/// serialization, so structurally identical graphs share a cache line and
/// any topology/weight-shape change misses.
pub fn model_content_hash(model: &ModelGraph) -> u64 {
    let json = serde_json::to_string(model).unwrap_or_default();
    fnv1a(json.as_bytes())
}

/// Analyze `model` lowered for `target`, memoized process-wide. On a hit
/// the budget is irrelevant (the work is already done); on a miss the full
/// analysis runs under `budget` outside the cache lock, and only success
/// is stored.
pub fn analyze_cached(
    model: &ModelGraph,
    target: &str,
    budget: &ExecBudget,
) -> Result<Arc<AnalyzedModel>, ProfileError> {
    let key = (model_content_hash(model), target.to_string());
    CACHE_LOOKUPS.inc();
    {
        let mut inner = lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.map.get_mut(&key) {
            e.stamp = tick;
            CACHE_HITS.inc();
            return Ok(Arc::clone(&e.value));
        }
    }
    CACHE_MISSES.inc();

    let (profile, plan, counts, summary, counting) = profile_model_report(model, target, budget)?;
    let value = Arc::new(AnalyzedModel {
        profile,
        plan,
        counts,
        summary,
        counting,
    });

    let mut inner = lock();
    inner.tick += 1;
    let tick = inner.tick;
    if inner.map.len() >= ANALYSIS_CACHE_CAPACITY && !inner.map.contains_key(&key) {
        if let Some(victim) = inner
            .map
            .iter()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(k, _)| k.clone())
        {
            inner.map.remove(&victim);
            CACHE_EVICTIONS.inc();
        }
    }
    inner.map.insert(
        key,
        Entry {
            value: Arc::clone(&value),
            stamp: tick,
        },
    );
    Ok(value)
}

/// [`analyze_cached`] at the device-independent default target — the
/// memoized equivalent of [`crate::features::profile_model`].
pub fn profile_model_cached(model: &ModelGraph) -> Result<Arc<AnalyzedModel>, ProfileError> {
    analyze_cached(
        model,
        crate::features::DEFAULT_SM_TARGET,
        &ExecBudget::default(),
    )
}

/// [`profile_model_cached`] under an explicit execution budget.
pub fn profile_model_cached_budgeted(
    model: &ModelGraph,
    budget: &ExecBudget,
) -> Result<Arc<AnalyzedModel>, ProfileError> {
    analyze_cached(model, crate::features::DEFAULT_SM_TARGET, budget)
}

/// Point-in-time cache occupancy: `(entries, capacity)`. Traffic counters
/// live in the obs registry (`analysis.cache.*`).
pub fn cache_stats() -> (usize, usize) {
    (lock().map.len(), ANALYSIS_CACHE_CAPACITY)
}

/// Non-counting lookup for tests and diagnostics: returns the cached
/// analysis if present without touching the traffic counters or the LRU
/// stamp (so `hits + misses == lookups` stays exact).
pub fn peek_cached(model: &ModelGraph, target: &str) -> Option<Arc<AnalyzedModel>> {
    let key = (model_content_hash(model), target.to_string());
    lock().map.get(&key).map(|e| Arc::clone(&e.value))
}

/// Drop every cached analysis (test isolation; traffic counters are not
/// reset, preserving the `hits + misses == lookups` invariant).
pub fn clear_analysis_cache() {
    lock().map.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable_and_discriminating() {
        let a = cnn_ir::zoo::build("mobilenet").unwrap();
        let b = cnn_ir::zoo::build("mobilenet").unwrap();
        let c = cnn_ir::zoo::build("alexnet").unwrap();
        assert_eq!(model_content_hash(&a), model_content_hash(&b));
        assert_ne!(model_content_hash(&a), model_content_hash(&c));
    }

    #[test]
    fn cached_analysis_matches_uncached() {
        let model = cnn_ir::zoo::build("mobilenet").unwrap();
        let cached = profile_model_cached(&model).unwrap();
        let (profile, plan, counts, summary) = crate::features::profile_model(&model).unwrap();
        assert_eq!(cached.profile.ptx_instructions, profile.ptx_instructions);
        assert_eq!(cached.profile.trainable_params, profile.trainable_params);
        assert_eq!(
            cached.counts.thread_instructions,
            counts.thread_instructions
        );
        assert_eq!(cached.counts.warp_issues, counts.warp_issues);
        assert_eq!(cached.plan.launches.len(), plan.launches.len());
        assert_eq!(cached.summary.neurons, summary.neurons);
    }

    #[test]
    fn target_is_part_of_the_key() {
        let model = cnn_ir::zoo::build("mobilenet").unwrap();
        let a = analyze_cached(&model, "sm_61", &ExecBudget::default()).unwrap();
        let b = analyze_cached(&model, "sm_70", &ExecBudget::default()).unwrap();
        assert_eq!(a.plan.module.target, "sm_61");
        assert_eq!(b.plan.module.target, "sm_70");
        // counts are target-independent even though the plans differ
        assert_eq!(a.counts.thread_instructions, b.counts.thread_instructions);
    }

    #[test]
    fn cached_analysis_carries_counting_provenance() {
        let model = cnn_ir::zoo::build("mobilenet").unwrap();
        let a = profile_model_cached(&model).unwrap();
        let c = &a.counting;
        assert!(c.kernels > 0);
        assert!(c.unique_launches > 0);
        // the default (auto) mode consults the poly tier for every kernel:
        // each one either compiled or was explicitly rejected
        assert_eq!(c.mode, ptx_analysis::CountMode::Auto);
        assert_eq!(c.poly_compiled + c.poly_rejected, c.kernels);
    }

    #[test]
    fn repeated_analysis_returns_the_same_arc() {
        let model = cnn_ir::zoo::build("mobilenet").unwrap();
        let a = profile_model_cached(&model).unwrap();
        let b = profile_model_cached(&model).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
    }
}
